"""Serving-layer throughput: multi-tenant load on a bounded worker pool.

Drives the ``repro.serve`` stack through the canonical load scenario —
3 tenants x 8 jobs on a 4-worker pool over a handful of warm sessions,
with a deliberately long job preempted mid-run and a late high-priority
wave — and reports throughput, latency quantiles, preemption/resume
counts and the cross-job plan-cache hit rate.

The asserted gates mirror the serving layer's design contract:

* **zero lost jobs**: every accepted submission reaches ``completed``,
  including the preempted one and any that saw typed backpressure (the
  client retry loop in the load generator absorbs rejections);
* **preempt -> resume works end to end**: the long job is preempted at a
  checkpoint round, re-queued, resumed from that round and completed;
* **warm sessions pay off**: >= 90% of par_loop executions across all jobs
  hit compiled plans cached by earlier jobs on the same session.

Writes ``benchmarks/results/serve_throughput.{txt,json}`` and diffs the
run against the committed JSON via ``compare_to_previous``.
"""

import asyncio
import tempfile

from _support import compare_to_previous, comparison_lines, emit
from repro import op2
from repro.serve.api import ServeService
from repro.serve.loadgen import run_load
from repro.telemetry import tracer as trace_mod

TENANTS = 3
JOBS_PER_TENANT = 8
WORKERS = 4
ITERATIONS = 12
TENANT_QUOTA = 5  # < jobs_per_tenant: the burst must hit backpressure
MIN_HIT_RATE = 0.90


async def _scenario(ckpt_dir: str) -> dict:
    service = ServeService(
        workers=WORKERS,
        max_depth=32,
        tenant_quota=TENANT_QUOTA,
        ckpt_dir=ckpt_dir,
        id_seed=2015,
    )
    async with service:
        return await run_load(
            service,
            tenants=TENANTS,
            jobs_per_tenant=JOBS_PER_TENANT,
            iterations=ITERATIONS,
        )


def test_serve_throughput():
    op2.clear_plan_cache()
    trace_mod.disable()
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as ckpt_dir:
        report = asyncio.run(_scenario(ckpt_dir))
    trace_mod.disable()

    lat = report["latency_seconds"]
    plan = report["plan_cache"]
    sched = report["scheduler"]
    data = {
        "config": {
            "tenants": TENANTS,
            "jobs_per_tenant": JOBS_PER_TENANT,
            "workers": WORKERS,
            "iterations": ITERATIONS,
            "tenant_quota": TENANT_QUOTA,
            "min_hit_rate": MIN_HIT_RATE,
        },
        "results": report,
    }
    cmp = compare_to_previous("serve_throughput", data)

    rows = [
        f"{TENANTS} tenants x {JOBS_PER_TENANT} jobs, {WORKERS} workers, "
        f"{ITERATIONS} iterations/job (+1 long job, preempted mid-run)",
        f"{'completed':<28}{report['jobs_completed']}/{report['jobs_submitted']}"
        f" jobs in {report['wall_seconds']:.2f}s "
        f"({report['throughput_jobs_per_s']:.2f} jobs/s)",
        f"{'latency p50/p95/p99':<28}{lat['p50'] * 1e3:.0f} / "
        f"{lat['p95'] * 1e3:.0f} / {lat['p99'] * 1e3:.0f} ms",
        f"{'preemptions/resumes':<28}{sched['preemptions']} / {sched['resumes']}"
        f" (long job resumed from round {report['long_job']['last_resume_round']})",
        f"{'backpressure':<28}{report['admission_retries']} client retries, "
        f"rejections {report['rejections']}",
        f"{'plan cache':<28}{plan['cross_job_hit_rate']:.1%} hit rate, "
        f"{plan['fully_warm_jobs']} fully-warm jobs, "
        f"{report['sessions']['sessions']} sessions",
        "",
        f"{'vs committed baseline':<40}{'previous':>12}{'current':>12}{'ratio':>8}",
        *comparison_lines(cmp, [
            "results.throughput_jobs_per_s",
            "results.latency_seconds.p50",
            "results.latency_seconds.p95",
            "results.plan_cache.cross_job_hit_rate",
            "results.scheduler.preemptions",
        ]),
    ]
    emit("serve_throughput", rows, data=data)

    # acceptance gates (see module docstring)
    assert not report["lost_jobs"], f"lost jobs: {report['lost_jobs']}"
    assert report["jobs_submitted"] >= TENANTS * JOBS_PER_TENANT
    assert sched["preemptions"] >= 1, "no job was preempted"
    assert report["long_job"]["state"] == "completed"
    assert report["long_job"]["resumes"] >= 1, "preempted job never resumed"
    assert plan["cross_job_hit_rate"] >= MIN_HIT_RATE, (
        f"plan-cache hit rate {plan['cross_job_hit_rate']:.1%} "
        f"below {MIN_HIT_RATE:.0%}"
    )
    assert plan["fully_warm_jobs"] >= 1, "no job ran fully warm"
