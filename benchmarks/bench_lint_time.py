"""Static-analysis cost: wall time to lint the whole repo's apps.

The linter is a pre-codegen gate (``translate_app(strict=True)`` runs it
before emitting anything), so its cost must stay small next to the
translation it guards.  This benchmark lints all four bundled apps —
cold (fresh ``Program`` index per run) and warm (shared index, the
``lint_many`` configuration the CLI and CI use) — and records per-app
and whole-repo wall times.
"""

import time

from _support import emit
from repro.lint import lint_app, lint_many
from repro.lint.resolve import Program

APPS = [
    "repro.apps.airfoil.app",
    "repro.apps.sod.app",
    "repro.apps.cloverleaf.app",
    "repro.apps.hydra.app",
]
REPEATS = 5


def best_of(fn):
    best, out = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_lint_wall_time(benchmark):
    per_app = []
    for spec in APPS:
        t, res = best_of(lambda s=spec: lint_app(s, Program()))
        per_app.append((spec, t, res))

    t_cold = sum(t for _, t, _ in per_app)
    t_warm, merged = best_of(lambda: lint_many(APPS))
    benchmark.pedantic(lambda: lint_many(APPS), rounds=3, iterations=1)

    n_sites = merged.n_sites
    n_kernels = merged.n_kernels
    n_diags = len(merged.diagnostics)

    lines = [
        f"repro.lint over the four bundled apps, best of {REPEATS}",
        "",
        f"{'app':44s} {'wall s':>8s} {'sites':>6s} {'kernels':>8s}",
    ]
    for (spec, t, res) in per_app:
        lines.append(
            f"{spec:44s} {t:8.3f} {res.n_sites:6d} {res.n_kernels:8d}"
        )
    lines += [
        "",
        f"whole repo, cold (per-app Program index):   {t_cold:.3f} s",
        f"whole repo, warm (shared index, lint_many): {t_warm:.3f} s",
        f"total: {n_sites} loop sites, {n_kernels} kernels, "
        f"{n_diags} diagnostics",
        "",
        "The warm figure is what the CI lint job pays for the whole repo;",
        "the apps share almost no kernel modules, so index sharing buys",
        "little here — per-file AST parse + footprint inference dominate.",
    ]
    emit(
        "lint_time",
        lines,
        data={
            "wall_seconds": {"cold": t_cold, "warm": t_warm},
            "loop_sites": n_sites,
            "kernels": n_kernels,
            "diagnostics": n_diags,
        },
    )

    assert t_warm < 10.0  # a pre-codegen gate must stay interactive
