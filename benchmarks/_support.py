"""Shared helpers for the benchmark harness.

Every benchmark follows the pipeline documented in DESIGN.md: run the real
application on the simulated substrate collecting exact traffic counters,
then convert to per-platform times with the calibrated machine models, and
print the same rows/series the paper's figure reports.  Output tables are
also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.perfmodel import characterise_run

RESULTS_DIR = Path(__file__).parent / "results"

#: per-kernel model annotations for the Airfoil loops (paper Table I
#: discussion: adt_calc needs vectorisation for its square roots; res_calc
#: and bres_calc are gather/scatter loops the compiler cannot vectorise)
AIRFOIL_KERNEL_INFO = {
    "save_soln": {"vectorisable": True, "divergence": 0.0},
    "adt_calc": {"vectorisable": True, "divergence": 0.1},
    "res_calc": {"vectorisable": False, "divergence": 0.3},
    "bres_calc": {"vectorisable": False, "divergence": 0.5},
    "update": {"vectorisable": True, "divergence": 0.0},
}

HYDRA_KERNEL_INFO = {
    "h_grad_calc": {"vectorisable": False, "divergence": 0.25},
    "h_inv_flux": {"vectorisable": False, "divergence": 0.35},
    "h_visc_flux": {"vectorisable": False, "divergence": 0.35},
    "h_mg_restrict": {"vectorisable": False, "divergence": 0.2},
    "h_mg_prolong": {"vectorisable": False, "divergence": 0.2},
    "h_adt_calc": {"vectorisable": True, "divergence": 0.1},
}


def collect(run_fn) -> tuple[PerfCounters, object]:
    """Run ``run_fn`` under a fresh counter scope; return (counters, result)."""
    counters = PerfCounters()
    with counters_scope(counters):
        result = run_fn()
    return counters, result


def characters_for(run_fn, kernel_info=None):
    counters, _ = collect(run_fn)
    return characterise_run(counters, kernel_info=kernel_info)


def emit(name: str, lines: list[str], data: dict | None = None) -> str:
    """Print a result table and persist it under benchmarks/results/.

    The human-readable table always lands in ``<name>.txt``; when ``data``
    is given a machine-readable ``<name>.json`` is written alongside it so
    CI jobs and plotting scripts never have to parse the table.
    """
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {"name": name, **data}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return text


def compare_to_previous(name: str, current: dict) -> dict:
    """Diff ``current`` result data against the committed ``<name>.json``.

    Walks the two payloads in parallel and reports every numeric leaf
    present in both as ``{"previous", "current", "ratio"}`` keyed by its
    dotted path.  Call *before* :func:`emit` (emit overwrites the committed
    file).  Returns ``{"previous_found": False}`` when no baseline is
    committed yet, so first runs of a new benchmark stay green.
    """
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return {"previous_found": False, "deltas": {}}
    previous = json.loads(path.read_text())
    deltas: dict[str, dict] = {}

    def walk(prev, cur, prefix):
        for key, c in cur.items():
            if key not in prev:
                continue
            p = prev[key]
            if isinstance(c, dict) and isinstance(p, dict):
                walk(p, c, f"{prefix}{key}.")
            elif (
                isinstance(c, (int, float)) and isinstance(p, (int, float))
                and not isinstance(c, bool) and not isinstance(p, bool)
            ):
                deltas[f"{prefix}{key}"] = {
                    "previous": p,
                    "current": c,
                    "ratio": c / p if p else None,
                }

    walk(previous, current, "")
    return {"previous_found": True, "deltas": deltas}


def comparison_lines(cmp: dict, keys: list[str], *, label_width: int = 40) -> list[str]:
    """Render selected :func:`compare_to_previous` deltas as table rows."""
    if not cmp.get("previous_found"):
        return ["no committed baseline to compare against (first run)"]
    out = []
    for key in keys:
        d = cmp["deltas"].get(key)
        if d is None:
            out.append(f"{key:<{label_width}} (new metric)")
            continue
        ratio = f"{d['ratio']:.2f}x" if d["ratio"] is not None else "n/a"
        out.append(
            f"{key:<{label_width}}{d['previous']:>12.4g}{d['current']:>12.4g}{ratio:>8}"
        )
    return out


def counters_summary(counters: PerfCounters) -> dict:
    """Aggregate measured counters into the JSON result schema."""
    recs = list(counters.loops.values())
    return {
        "wall_seconds": sum(r.wall_seconds for r in recs),
        "bytes_moved": sum(r.bytes_moved for r in recs),
        "flops": sum(r.flops for r in recs),
        "invocations": sum(r.invocations for r in recs),
        "colours": max((r.colours for r in recs), default=0),
        "plan_hits": counters.plan_hits,
        "plan_misses": counters.plan_misses,
    }


def scale_characters(chars: dict, factor: float) -> dict:
    """Extrapolate measured per-invocation traffic to a larger mesh.

    All counted quantities are linear in the element count, so multiplying
    traffic, flops and element counts by ``factor`` models the same
    application on a ``factor``-times larger mesh (the paper's production
    meshes are far larger than what is practical to execute here).
    """
    import dataclasses

    out = {}
    for name, ch in chars.items():
        t = ch.traffic
        scaled_traffic = dataclasses.replace(
            t,
            bytes_direct=t.bytes_direct * factor,
            bytes_indirect=t.bytes_indirect * factor,
            flops=t.flops * factor,
            bytes_indirect_unique=(
                None if t.bytes_indirect_unique is None else t.bytes_indirect_unique * factor
            ),
        )
        out[name] = dataclasses.replace(
            ch, traffic=scaled_traffic, elements=int(ch.elements * factor)
        )
    return out
