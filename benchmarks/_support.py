"""Shared helpers for the benchmark harness.

Every benchmark follows the pipeline documented in DESIGN.md: run the real
application on the simulated substrate collecting exact traffic counters,
then convert to per-platform times with the calibrated machine models, and
print the same rows/series the paper's figure reports.  Output tables are
also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.perfmodel import characterise_run

RESULTS_DIR = Path(__file__).parent / "results"

#: per-kernel model annotations for the Airfoil loops (paper Table I
#: discussion: adt_calc needs vectorisation for its square roots; res_calc
#: and bres_calc are gather/scatter loops the compiler cannot vectorise)
AIRFOIL_KERNEL_INFO = {
    "save_soln": {"vectorisable": True, "divergence": 0.0},
    "adt_calc": {"vectorisable": True, "divergence": 0.1},
    "res_calc": {"vectorisable": False, "divergence": 0.3},
    "bres_calc": {"vectorisable": False, "divergence": 0.5},
    "update": {"vectorisable": True, "divergence": 0.0},
}

HYDRA_KERNEL_INFO = {
    "h_grad_calc": {"vectorisable": False, "divergence": 0.25},
    "h_inv_flux": {"vectorisable": False, "divergence": 0.35},
    "h_visc_flux": {"vectorisable": False, "divergence": 0.35},
    "h_mg_restrict": {"vectorisable": False, "divergence": 0.2},
    "h_mg_prolong": {"vectorisable": False, "divergence": 0.2},
    "h_adt_calc": {"vectorisable": True, "divergence": 0.1},
}


def collect(run_fn) -> tuple[PerfCounters, object]:
    """Run ``run_fn`` under a fresh counter scope; return (counters, result)."""
    counters = PerfCounters()
    with counters_scope(counters):
        result = run_fn()
    return counters, result


def characters_for(run_fn, kernel_info=None):
    counters, _ = collect(run_fn)
    return characterise_run(counters, kernel_info=kernel_info)


def emit(name: str, lines: list[str], data: dict | None = None) -> str:
    """Print a result table and persist it under benchmarks/results/.

    The human-readable table always lands in ``<name>.txt``; when ``data``
    is given a machine-readable ``<name>.json`` is written alongside it so
    CI jobs and plotting scripts never have to parse the table.
    """
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {"name": name, **data}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return text


def counters_summary(counters: PerfCounters) -> dict:
    """Aggregate measured counters into the JSON result schema."""
    recs = list(counters.loops.values())
    return {
        "wall_seconds": sum(r.wall_seconds for r in recs),
        "bytes_moved": sum(r.bytes_moved for r in recs),
        "flops": sum(r.flops for r in recs),
        "invocations": sum(r.invocations for r in recs),
        "colours": max((r.colours for r in recs), default=0),
        "plan_hits": counters.plan_hits,
        "plan_misses": counters.plan_misses,
    }


def scale_characters(chars: dict, factor: float) -> dict:
    """Extrapolate measured per-invocation traffic to a larger mesh.

    All counted quantities are linear in the element count, so multiplying
    traffic, flops and element counts by ``factor`` models the same
    application on a ``factor``-times larger mesh (the paper's production
    meshes are far larger than what is practical to execute here).
    """
    import dataclasses

    out = {}
    for name, ch in chars.items():
        t = ch.traffic
        scaled_traffic = dataclasses.replace(
            t,
            bytes_direct=t.bytes_direct * factor,
            bytes_indirect=t.bytes_indirect * factor,
            flops=t.flops * factor,
            bytes_indirect_unique=(
                None if t.bytes_indirect_unique is None else t.bytes_indirect_unique * factor
            ),
        )
        out[name] = dataclasses.replace(
            ch, traffic=scaled_traffic, elements=int(ch.elements * factor)
        )
    return out
