"""Figure 4: Airfoil and Hydra strong/weak scaling (CPU and GPU clusters).

Paper series: Airfoil and Hydra on HECToR (Cray XE6) and on M2090/K20m GPU
clusters, 1-256 nodes, strong (fixed 26M-cell-class mesh) and weak (fixed
per-node mesh).  Expected shape: strong scaling tails off as the per-node
problem shrinks — much faster on GPUs; weak scaling holds within a few
percent on CPUs; and the Airfoil (proxy) trends match the Hydra
(industrial) trends — the paper's transferability claim.

Halo volumes and neighbour counts are *measured* from real 4-rank
partitioned runs on the simulated MPI substrate, then extrapolated with the
surface-to-volume law.
"""

import numpy as np
import pytest

from _support import (
    AIRFOIL_KERNEL_INFO,
    HYDRA_KERNEL_INFO,
    characters_for,
    emit,
    scale_characters,
)
from repro.apps.airfoil import AirfoilApp
from repro.apps.hydra import HydraApp, generate_hydra_mesh
from repro.machine import HECTOR_XE6_NODE, NVIDIA_K20M, NVIDIA_M2090
from repro.machine.catalog import GEMINI, QDR_IB
from repro.perfmodel import ScalingModel
from repro.simmpi import World, run_spmd

NODES = [1, 2, 4, 8, 16, 32, 64, 128, 256]
STRONG_TOTAL = 26_000_000  # cells-class, "tens of millions of edges"
WEAK_PER_NODE = 1_500_000


def measure_airfoil_comm():
    """4-rank partitioned Airfoil run: halo sizes and exchange counts."""
    app = AirfoilApp(nx=48, ny=32, jitter=0.1)
    pm = app.build_partitioned(4, "rcb")
    world = World(4)
    run_spmd(4, lambda comm: app.run_distributed(comm, pm, 2), world=world)
    total = world.total_counters()
    cells = app.mesh.cells
    halo_elems = np.mean(
        [pm.local(r).layouts[id(cells)].halo_ids.size for r in range(4)]
    )
    neighbours = np.mean(
        [len(pm.local(r).layouts[id(cells)].recv) or 1 for r in range(4)]
    )
    local = cells.size / 4
    coeff = ScalingModel.calibrate_halo(max(halo_elems, 1.0), local, dim=2)
    exch_per_step = total.halo_exchanges / 4 / 2  # per rank per iteration
    bytes_per_halo_elem = total.bytes_sent / max(total.halo_exchanges * halo_elems, 1)
    return coeff, int(round(neighbours)), exch_per_step, bytes_per_halo_elem


def model_for(machine, net, chars, comm_params, *, gpu=False):
    coeff, neighbours, exch, bph = comm_params
    return ScalingModel(
        machine,
        net,
        dim=2,
        gpu=gpu,
        vectorised=True,
        neighbours=neighbours,
        halo_coeff=coeff,
        bytes_per_halo_elem=bph,
        exchanges_per_step=max(int(round(exch)), 1),
        reductions_per_step=1,
    )


@pytest.fixture(scope="module")
def curves():
    comm = measure_airfoil_comm()

    a = AirfoilApp(nx=120, ny=80, jitter=0.1)
    a_chars = characters_for(lambda: a.run(2), AIRFOIL_KERNEL_INFO)
    h = HydraApp(generate_hydra_mesh(120, 80, jitter=0.1))
    h_chars = characters_for(lambda: h.run(2), HYDRA_KERNEL_INFO)

    base_cells = 120 * 80
    out = {}
    for app_name, chars in (("airfoil", a_chars), ("hydra", h_chars)):
        strong_chars = scale_characters(chars, STRONG_TOTAL / base_cells)
        weak_chars = scale_characters(chars, WEAK_PER_NODE / base_cells)
        gpu_machine = NVIDIA_M2090 if app_name == "airfoil" else NVIDIA_K20M
        cpu = model_for(HECTOR_XE6_NODE, GEMINI, chars, comm)
        gpu = model_for(gpu_machine, QDR_IB, chars, comm, gpu=True)
        out[(app_name, "cpu", "strong")] = cpu.strong(strong_chars, STRONG_TOTAL, NODES, steps=2)
        out[(app_name, "gpu", "strong")] = gpu.strong(strong_chars, STRONG_TOTAL, NODES, steps=2)
        out[(app_name, "cpu", "weak")] = cpu.weak(weak_chars, WEAK_PER_NODE, NODES, steps=2)
        out[(app_name, "gpu", "weak")] = gpu.weak(weak_chars, WEAK_PER_NODE, NODES, steps=2)
    return out


def test_fig4_scaling_curves(benchmark, curves):
    benchmark.pedantic(measure_airfoil_comm, rounds=2, iterations=1)

    rows = [f"{'nodes':>6}" + "".join(f"{n:>10}" for n in NODES)]
    for key, pts in curves.items():
        label = f"{key[0]} {key[1].upper()} {key[2]}"
        rows.append(f"{label:<24}" + "".join(f"{p.seconds:10.3f}" for p in pts))
    emit(
        "fig4_op2_scaling",
        rows,
        data={
            "config": {"nodes": list(NODES)},
            "seconds": {
                f"{app} {plat} {mode}": [p.seconds for p in pts]
                for (app, plat, mode), pts in curves.items()
            },
        },
    )

    eff = {k: ScalingModel.parallel_efficiency(v, weak=(k[2] == "weak")) for k, v in curves.items()}

    for app_name in ("airfoil", "hydra"):
        # strong scaling: runtime keeps dropping but efficiency decays
        for plat in ("cpu", "gpu"):
            times = [p.seconds for p in curves[(app_name, plat, "strong")]]
            assert times[0] > times[-1]
            assert eff[(app_name, plat, "strong")][-1] < 1.0
        # GPUs tail off much sooner than CPUs
        assert (
            eff[(app_name, "gpu", "strong")][-1]
            < eff[(app_name, "cpu", "strong")][-1]
        )
        # weak scaling: <5% degradation on the CPU cluster (paper claim)
        assert eff[(app_name, "cpu", "weak")][-1] > 0.95
        # GPU weak scaling holds within ~10%
        assert eff[(app_name, "gpu", "weak")][-1] > 0.85

    # transferability: the proxy's trends match the industrial app's ---------
    for plat in ("cpu", "gpu"):
        # strong-scaling efficiency declines monotonically for both apps
        ea = np.asarray(eff[("airfoil", plat, "strong")])
        eh = np.asarray(eff[("hydra", plat, "strong")])
        assert np.all(np.diff(ea) <= 1e-9) and np.all(np.diff(eh) <= 1e-9), plat
        # weak-scaling efficiency stays flat for both, within a few points
        wa = np.asarray(eff[("airfoil", plat, "weak")])
        wh = np.asarray(eff[("hydra", plat, "weak")])
        assert np.max(np.abs(wa - wh)) < 0.15, plat
