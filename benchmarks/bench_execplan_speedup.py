"""Compiled-loop executor speedup: interpreted vs compiled hot path.

Measures the wall-clock effect of the execplan layer (per-site plan
caching, buffer arenas, segment-reduction INC scatters, cached region
views) on the Airfoil (op2) and CloverLeaf (ops) proxy apps on the ``vec``
backend.  Unlike the figure benchmarks this one reports *measured* host
wall time, not model-predicted platform time: the compiled path is a real
optimisation of the simulation substrate itself.

Writes ``benchmarks/results/execplan_speedup.{txt,json}``; the CI
perf-smoke job fails if the compiled path is ever slower than the
interpreted one.
"""

import time

from _support import collect, counters_summary, emit
from repro import op2, ops
from repro.common.config import swap

AIRFOIL_MESH = (100, 60)
AIRFOIL_ITERS = 40
CLOVER_MESH = (48, 48)
CLOVER_STEPS = 30
REPEATS = 3


def _clear_caches():
    op2.clear_plan_cache()
    ops.clear_plan_cache()


def _measure(run, use_plan: bool):
    """Best-of-N wall time on a warmed app.

    The untimed warm-up run covers one-time costs common to both paths
    (vectorised kernel generation) plus, on the compiled path, plan
    compilation — so the timed repeats measure the steady state the layer
    is designed for: every loop invocation replaying a cached plan.
    """
    _clear_caches()
    best, counters = float("inf"), None
    with swap(use_execplan=use_plan):
        collect(run)
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            counters, _ = collect(run)
            best = min(best, time.perf_counter() - t0)
    return best, counters


def _airfoil_run():
    from repro.apps.airfoil.app import AirfoilApp

    app = AirfoilApp(nx=AIRFOIL_MESH[0], ny=AIRFOIL_MESH[1], jitter=0.2, backend="vec")
    return lambda: app.run(AIRFOIL_ITERS)


def _cloverleaf_run():
    from repro.apps.cloverleaf import CloverLeafApp

    app = CloverLeafApp(nx=CLOVER_MESH[0], ny=CLOVER_MESH[1], backend="vec")
    return lambda: app.run(CLOVER_STEPS)


def test_execplan_speedup():
    results = {}
    for label, make_run in (("airfoil_vec", _airfoil_run), ("cloverleaf_vec", _cloverleaf_run)):
        interp_s, _ = _measure(make_run(), False)
        compiled_s, counters = _measure(make_run(), True)
        results[label] = {
            "interpreted_seconds": interp_s,
            "compiled_seconds": compiled_s,
            "speedup": interp_s / compiled_s,
            "compiled_counters": counters_summary(counters),
        }

    rows = [
        f"{label:<16} interpreted {r['interpreted_seconds']:8.4f} s   "
        f"compiled {r['compiled_seconds']:8.4f} s   speedup {r['speedup']:5.2f}x   "
        f"(plans: {r['compiled_counters']['plan_hits']} hits, "
        f"{r['compiled_counters']['plan_misses']} misses)"
        for label, r in results.items()
    ]
    emit(
        "execplan_speedup",
        rows,
        data={
            "config": {
                "airfoil_mesh": list(AIRFOIL_MESH),
                "airfoil_iterations": AIRFOIL_ITERS,
                "cloverleaf_mesh": list(CLOVER_MESH),
                "cloverleaf_steps": CLOVER_STEPS,
                "repeats": REPEATS,
                "backend": "vec",
            },
            "results": results,
        },
    )

    # CI gate: the compiled path must never be a pessimisation; on quiet
    # machines Airfoil lands well above 2x (the acceptance target)
    assert results["airfoil_vec"]["speedup"] > 1.2
    assert results["cloverleaf_vec"]["speedup"] > 1.0
    # the whole point is amortisation: after warm-up every invocation must
    # replay a cached plan
    for label, r in results.items():
        c = r["compiled_counters"]
        assert c["plan_hits"] / (c["plan_hits"] + c["plan_misses"]) > 0.99, label
        assert c["plan_misses"] == 0, label
