"""Resilience overhead: fault-free cost and recovery cost of checkpoint-restart.

Two questions the subsystem must answer before anyone turns it on:

1. What does the machinery cost when nothing fails?  Compares a plain
   ``run_spmd`` Airfoil run against ``run_resilient_spmd`` with
   checkpointing off and at two cadences (per-rank observers + rolling
   FileStore rounds are the only additions).
2. What does a failure cost to recover?  Kills a rank mid-run at several
   checkpoint frequencies and reports restarts, the round recovered from,
   work replayed (loops between checkpoint entry and the crash) and wall
   time lost to recovery.
"""

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from _support import emit
from repro.resilience import FaultPlan, run_resilient_spmd
from repro.resilience.jobs import AirfoilJob
from repro.simmpi import run_spmd

NRANKS, ITERS = 3, 8
LOOPS_PER_ITER = 9  # save_soln + 2 RK stages of (adt, res, bres, update)


def fresh_job() -> AirfoilJob:
    return AirfoilJob(NRANKS, ITERS, nx=16, ny=10)


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


@pytest.fixture(scope="module")
def ckpt_dir():
    d = Path(tempfile.mkdtemp(prefix="bench-resilience-"))
    yield d
    shutil.rmtree(d, ignore_errors=True)


def test_fault_free_overhead(benchmark, ckpt_dir):
    job = fresh_job()
    state = job.setup()
    t_plain, base = timed(lambda: run_spmd(NRANKS, lambda c: job.rank_main(c, state)))

    rows = [f"{'configuration':<34} {'wall s':>8} {'vs plain':>9} {'ckpt files':>11}"]
    rows.append(f"{'plain run_spmd':<34} {t_plain:8.3f} {'1.00x':>9} {'-':>11}")

    modes = {}
    for label, freq in [
        ("resilient, checkpoints off", None),
        (f"resilient, every {2 * LOOPS_PER_ITER} loops", 2 * LOOPS_PER_ITER),
        (f"resilient, every {LOOPS_PER_ITER} loops", LOOPS_PER_ITER),
    ]:
        d = ckpt_dir / f"freq-{freq}"
        t, res = timed(
            lambda d=d, freq=freq: run_resilient_spmd(
                NRANKS, fresh_job(), ckpt_dir=d, frequency=freq
            )
        )
        nfiles = len(list(d.glob("ckpt-r*-n*.npz")))
        modes[label] = {"wall_seconds": t, "vs_plain": t / t_plain, "ckpt_files": nfiles}
        rows.append(f"{label:<34} {t:8.3f} {t / t_plain:8.2f}x {nfiles:>11}")
        # the machinery must not perturb the numerics
        np.testing.assert_array_equal(res.results[0][1], base[0][1])
        assert res.restarts == 0

    emit(
        "resilience_fault_free_overhead",
        rows,
        data={
            "config": {"nranks": NRANKS, "iterations": ITERS},
            "plain_seconds": t_plain,
            "modes": modes,
        },
    )
    benchmark.pedantic(
        lambda: run_resilient_spmd(
            NRANKS, fresh_job(), ckpt_dir=ckpt_dir / "bench", frequency=2 * LOOPS_PER_ITER
        ),
        rounds=3,
        iterations=1,
    )


def test_recovery_cost_vs_frequency(ckpt_dir):
    job = fresh_job()
    state = job.setup()
    t_plain, base = timed(lambda: run_spmd(NRANKS, lambda c: job.rank_main(c, state)))
    kill_at = 5 * LOOPS_PER_ITER  # mid-run, past several checkpoint rounds

    rows = [
        f"kill rank 1 at loop {kill_at} of {ITERS * LOOPS_PER_ITER}; "
        f"plain run {t_plain:.3f} s",
        f"{'frequency':>9} {'restarts':>8} {'round':>6} {'replayed':>9} "
        f"{'recovery s':>10} {'total s':>8}",
    ]
    by_freq = {}
    for freq in [None, 3 * LOOPS_PER_ITER, 2 * LOOPS_PER_ITER, LOOPS_PER_ITER]:
        d = ckpt_dir / f"recover-{freq}"
        plan = FaultPlan().kill(1, at_loop=kill_at)
        t, res = timed(
            lambda d=d, freq=freq, plan=plan: run_resilient_spmd(
                NRANKS, fresh_job(), ckpt_dir=d, frequency=freq, plan=plan
            )
        )
        round_used = res.recovered_rounds[0]
        if round_used >= 0:
            entry = (round_used + 1) * freq
            replayed = kill_at - entry
        else:
            entry, replayed = 0, kill_at
        by_freq[str(freq)] = {
            "restarts": res.restarts,
            "round_used": round_used,
            "loops_replayed": replayed,
            "recovery_seconds": res.counters.recovery_seconds,
            "total_seconds": t,
        }
        rows.append(
            f"{str(freq):>9} {res.restarts:>8} {round_used:>6} {replayed:>9} "
            f"{res.counters.recovery_seconds:>10.3f} {t:>8.3f}"
        )
        np.testing.assert_array_equal(res.results[0][1], base[0][1])
        assert res.restarts == 1

    emit(
        "resilience_recovery_cost",
        rows,
        data={
            "config": {"nranks": NRANKS, "iterations": ITERS, "kill_at_loop": kill_at},
            "plain_seconds": t_plain,
            "by_frequency": by_freq,
        },
    )
