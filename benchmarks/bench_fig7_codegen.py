"""Figure 7: generated CUDA for the AoS / SoA / staged memory strategies.

The paper's figure shows the OP2 code generator emitting, for one dat
(``coords``, storing x and y per vertex), three memory-access strategies:
``NOSOA`` (plain AoS), ``SOA`` (stride macro), and ``STAGE_NOSOA`` (AoS
staged through shared-memory scratch).  This benchmark regenerates all
three, asserts the figure's structural elements, and measures both the
translator's speed and the executable SoA/AoS data transform.
"""

import numpy as np
import pytest

from _support import emit
from repro import op2
from repro.op2.soa import soa_index, soa_stride, to_aos, to_soa
from repro.translator.codegen.cuda_c import CudaDatSpec, MemoryStrategy, generate_cuda
from repro.translator.frontend import parse_app_source

SITE_SRC = """
op2.par_loop(res_calc, mesh.edges,
             coords(op2.READ, mesh.edge2node, 0),
             res(op2.INC, mesh.edge2cell, 0))
"""


@pytest.fixture(scope="module")
def site():
    return parse_app_source(SITE_SRC)[0]


def test_fig7_generated_variants(benchmark, site):
    dats = [CudaDatSpec("coords", 2)]
    outputs = {
        s: generate_cuda(site, dats, s) for s in MemoryStrategy
    }
    benchmark.pedantic(
        lambda: [generate_cuda(site, dats, s) for s in MemoryStrategy],
        rounds=20,
        iterations=5,
    )

    lines = []
    for strategy, code in outputs.items():
        lines.append(f"----- {strategy.value} " + "-" * 40)
        lines.append(code)
    emit(
        "fig7_generated_cuda",
        lines,
        data={
            "generated_lines": {
                strategy.value: len(code.splitlines()) for strategy, code in outputs.items()
            },
        },
    )

    # the figure's structural elements ---------------------------------------
    assert "#define OP_ACC_COORDS(x) (x)" in outputs[MemoryStrategy.NOSOA]
    assert "#define OP_ACC_COORDS(x) ((x)*coords_stride)" in outputs[MemoryStrategy.SOA]
    assert "__shared__ double coords_scratch[2 * BLOCK];" in outputs[MemoryStrategy.STAGE_NOSOA]
    assert "__syncthreads();" in outputs[MemoryStrategy.STAGE_NOSOA]
    # user function call sites differ exactly as in the figure
    assert "&coords[2*gbl_idx]" in outputs[MemoryStrategy.NOSOA]
    assert "&coords[gbl_idx]" in outputs[MemoryStrategy.SOA]
    assert "&coords_scratch[2*threadIdx.x]" in outputs[MemoryStrategy.STAGE_NOSOA]
    # all three share the same device user function
    for code in outputs.values():
        assert "__device__ void res_calc_gpu(double *coords)" in code


def test_fig7_executable_soa_transform(benchmark):
    """The SOA strategy's indexing is executable, not just printable."""
    nodes = op2.Set(10_000)
    coords = op2.Dat(nodes, 2, np.random.default_rng(0).standard_normal((10_000, 2)))
    flat = benchmark(to_soa, coords)
    stride = soa_stride(coords)
    # OP_ACC(x) = x * stride reads the right components
    for e in (0, 17, 9_999):
        assert flat[soa_index(e, 0, stride)] == coords.data[e, 0]
        assert flat[soa_index(e, 1, stride)] == coords.data[e, 1]
    np.testing.assert_array_equal(to_aos(flat, 10_000, 2), coords.data)
