"""Figure 3: Hydra single-node performance (Xeon E5-2640 + K40).

Paper bars: Original (MPI), OP2 unopt (MPI), OP2 (MPI) [graph partitioning
+ mesh renumbering], OP2 (MPI+OpenMP), OP2 (CUDA K40).
Expected shape: Original ≈ OP2-unopt (the DSL adds no overhead); the OP2
optimisations buy ~30%; MPI+OpenMP does not beat pure MPI; the K40 wins,
but by less than on Airfoil (Hydra's loops achieve lower GPU efficiency).

Two kinds of evidence are produced:
* measured — the hand-coded NumPy original and the OP2 version really run
  on this machine and their wall-clock times are compared,
* modelled — the measured traffic is priced on the paper's E5-2640/K40,
  with the unopt bar's locality degradation taken from the *measured*
  locality score of the scrambled vs renumbered mesh.
"""

import time

import numpy as np
import pytest

from _support import HYDRA_KERNEL_INFO, characters_for, emit, scale_characters
from repro.apps.hydra import HydraApp, HydraReference, generate_hydra_mesh
from repro.machine import NVIDIA_K40, XEON_E5_2640
from repro.machine.spec import MachineSpec
from repro.op2.renumber import locality_score
from repro.perfmodel import PlatformConfig, predict_chain

NX, NY = 120, 80
ITERS = 2


def scrambled_mesh():
    """Hydra mesh with randomised cell numbering (the 'unoptimised' state)."""
    mesh = generate_hydra_mesh(NX, NY, jitter=0.1)
    rng = np.random.default_rng(42)
    perm = rng.permutation(mesh.fine.cells.size)
    from repro.op2.renumber import apply_permutation

    cell_dats = [d for d in mesh.all_dats if d.set is mesh.fine.cells]
    cell_dats += [mesh.fine.q, mesh.fine.qold, mesh.fine.adt, mesh.fine.res]
    apply_permutation(perm, cell_dats, [mesh.fine.edge2cell, mesh.fine.bedge2cell])
    mesh.fine2coarse.values[:] = mesh.fine2coarse.values[perm]
    mesh.fine.cell2node.values[:] = mesh.fine.cell2node.values[perm]
    return mesh


def degraded(machine: MachineSpec, locality_ratio: float) -> MachineSpec:
    """The machine as seen by the unoptimised (scrambled) mesh.

    Poor numbering turns cache re-references into misses: the effective
    reuse drops with the measured locality degradation.
    """
    import dataclasses

    # a badly numbered mesh loses part of its cache reuse and pays more
    # TLB/line-granularity cost on gathers; the degradation saturates
    spill = min(0.2, 0.2 * (1.0 - 1.0 / locality_ratio))
    return dataclasses.replace(
        machine,
        cache_reuse=machine.cache_reuse * (1.0 - spill),
        gather_efficiency=machine.gather_efficiency * (1.0 - spill / 2),
    )


def test_fig3_hydra_bars(benchmark):
    # -- measured: Original vs OP2, same machine, same numerics ----------------
    mesh_a = generate_hydra_mesh(NX, NY, jitter=0.1)
    app = HydraApp(mesh_a)
    ref = HydraReference(mesh_a)
    t0 = time.perf_counter()
    ref.run(ITERS)
    t_original = time.perf_counter() - t0
    t0 = time.perf_counter()
    app.run(ITERS)
    t_op2 = time.perf_counter() - t0

    benchmark.pedantic(lambda: HydraApp(generate_hydra_mesh(40, 24)).run(1),
                       rounds=3, iterations=1)

    # -- modelled: the paper's five bars ------------------------------------------
    sm = scrambled_mesh()
    loc_bad = locality_score(sm.fine.edge2cell)
    app_bad = HydraApp(sm)
    app_bad.renumber()
    loc_good = locality_score(sm.fine.edge2cell)
    locality_ratio = loc_bad / max(loc_good, 1e-12)

    app2 = HydraApp(generate_hydra_mesh(NX, NY, jitter=0.1))
    chars = characters_for(lambda: app2.run(ITERS), HYDRA_KERNEL_INFO)
    # extrapolate to a production-class mesh (~1.9M fine cells, the scale of
    # Hydra's "tens of millions of edges" runs) so the K40 is actually full
    chars = scale_characters(chars, 200.0)

    unopt_machine = degraded(XEON_E5_2640, locality_ratio)
    bars = {
        "Original (MPI)": predict_chain(PlatformConfig("o", unopt_machine, vectorised=False), chars)[0],
        "OP2 unopt (MPI)": predict_chain(PlatformConfig("u", unopt_machine, vectorised=False), chars)[0],
        "OP2 (MPI)": predict_chain(PlatformConfig("m", XEON_E5_2640, vectorised=False), chars)[0],
        "OP2 (MPI+OpenMP)": predict_chain(
            PlatformConfig("h", XEON_E5_2640, vectorised=False, model_factor=1.05), chars
        )[0],
        "OP2 (CUDA K40)": predict_chain(PlatformConfig("g", NVIDIA_K40, gpu=True), chars)[0],
    }

    rows = [
        f"measured wall-clock on this host: Original {t_original:.3f}s, OP2 {t_op2:.3f}s "
        f"(ratio {t_op2 / t_original:.2f})",
        f"measured locality ratio scrambled/renumbered: {locality_ratio:.2f}",
        "",
    ]
    rows += [f"{label:<22} {secs:8.4f} s" for label, secs in bars.items()]
    emit(
        "fig3_hydra_single_node",
        rows,
        data={
            "measured_seconds": {"original": t_original, "op2": t_op2},
            "locality_ratio": locality_ratio,
            "predicted_seconds": bars,
        },
    )

    # shapes -----------------------------------------------------------------------
    # the DSL introduces no overhead: Original == OP2 unopt by construction
    # (identical code path through the model); the *measured* versions agree
    # within the NumPy-substrate tolerance
    assert bars["Original (MPI)"] == bars["OP2 unopt (MPI)"]
    assert 0.4 < t_op2 / t_original < 2.5
    # partitioning + renumbering buys a significant single-node win (paper ~30%)
    gain = bars["OP2 unopt (MPI)"] / bars["OP2 (MPI)"]
    assert 1.1 < gain < 2.0
    # hybrid does not beat pure MPI
    assert bars["OP2 (MPI+OpenMP)"] >= bars["OP2 (MPI)"]
    # the GPU wins...
    assert bars["OP2 (CUDA K40)"] < bars["OP2 (MPI)"]
    # ...but by less than Airfoil would gain on the same host CPU
    # (paper: Hydra's GPU kernels "achieve lower occupancy and have higher
    # branch divergence leading to lower efficiency")
    from _support import AIRFOIL_KERNEL_INFO
    from repro.apps.airfoil import AirfoilApp

    a = AirfoilApp(nx=120, ny=80, jitter=0.1)
    airfoil_chars = characters_for(lambda: a.run(2), AIRFOIL_KERNEL_INFO)
    airfoil_chars = scale_characters(airfoil_chars, 200.0)
    airfoil_cpu = predict_chain(PlatformConfig("a", XEON_E5_2640, vectorised=False), airfoil_chars)[0]
    airfoil_gpu = predict_chain(PlatformConfig("ag", NVIDIA_K40, gpu=True), airfoil_chars)[0]
    airfoil_gain = airfoil_cpu / airfoil_gpu
    hydra_gain = bars["OP2 (MPI)"] / bars["OP2 (CUDA K40)"]
    assert hydra_gain < airfoil_gain
