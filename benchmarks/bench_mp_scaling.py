"""Multi-process executor scaling: run_spmd (threads) vs run_spmd_mp (forks).

Times the distributed Airfoil proxy app with the native compiled-kernel
backend under both executors.  The in-process executor interleaves all
ranks on one Python interpreter (the GIL serialises everything outside the
native kernel bodies); ``repro.mp`` forks one OS process per rank, so on a
multi-core machine the compute legs genuinely overlap.

Measured legs (identical work, bitwise-identical results — asserted):

* ``inproc`` — ``run_spmd`` at WORKERS ranks (the oracle),
* ``mp1``    — ``run_spmd_mp`` at 1 worker (pure executor overhead:
  fork + pipe fabric + result shipping, no parallelism to win),
* ``mpN``    — ``run_spmd_mp`` at WORKERS workers.

Reported: wall times, mp-vs-inproc speedup, mpN-vs-mp1 scaling, and the
visible core count.  The >1.5x-at-4-workers gate is asserted only when the
machine actually has >= 4 cores — a 1-core container cannot physically
show multi-core scaling, and a benchmark that fakes it would poison the
trajectory; the honest figure is recorded either way.

Results land in ``benchmarks/results/mp_scaling.{txt,json}`` plus one
appended trajectory point in ``benchmarks/results/BENCH_mp.json``.
"""

import json
import os
import shutil
import tempfile
import time

import numpy as np
import pytest
from _support import RESULTS_DIR, compare_to_previous, emit
from repro import op2, ops
from repro.common.config import swap
from repro.mp import run_spmd_mp
from repro.native import cache as native_cache
from repro.simmpi import run_spmd

MESH = (96, 64)
ITERS = 60
WORKERS = 4
REPEATS = 3


def _clear_plans():
    op2.clear_plan_cache()
    ops.clear_plan_cache()


def _airfoil_case(nranks):
    """A fresh distributed-airfoil closure: (spmd callable) -> result dict."""
    from repro.apps.airfoil.app import AirfoilApp
    from repro.apps.airfoil.mesh import generate_mesh

    mesh = generate_mesh(*MESH, jitter=0.1)
    app = AirfoilApp(mesh)
    pm = app.build_partitioned(nranks, "block")

    def main(comm):
        rms = app.run_distributed(comm, pm, ITERS)
        return rms, pm.local(comm.rank).gather_dat(comm, mesh.q)

    def run(spmd):
        _clear_plans()
        rms, q = spmd(nranks, main)[0]
        return {"rms": rms, "q": q}

    return run


def _best_of(nranks, spmd):
    """Best-of-N wall time; every pass gets a pristine case (the in-process
    executor mutates the parent's app state, forked workers don't — reusing
    one case would time different work per executor)."""
    _airfoil_case(nranks)(spmd)  # untimed warm-up: plans + native admission
    best = float("inf")
    out = None
    for _ in range(REPEATS):
        run = _airfoil_case(nranks)  # mesh/partition built outside the clock
        t0 = time.perf_counter()
        out = run(spmd)
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_mp_scaling():
    if native_cache.find_compiler() is None:
        pytest.skip("no C compiler: the mp scaling bench times the native tier")
    cores = os.cpu_count() or 1
    cache_root = tempfile.mkdtemp(prefix="repro-bench-mpcache-")
    try:
        with swap(use_execplan=True, native=True, native_cache_dir=cache_root):
            inproc_s, ref = _best_of(WORKERS, run_spmd)
            mp1_s, _ = _best_of(1, run_spmd_mp)
            mpn_s, got = _best_of(WORKERS, run_spmd_mp)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    # the executors must agree bitwise before any timing is worth reporting
    assert got["rms"] == ref["rms"]
    assert np.array_equal(got["q"], ref["q"])

    speedup_vs_inproc = inproc_s / mpn_s
    scaling_vs_mp1 = mp1_s / mpn_s

    data = {
        "config": {
            "mesh": list(MESH),
            "iterations": ITERS,
            "workers": WORKERS,
            "repeats": REPEATS,
            "backend": "native",
        },
        "cores": cores,
        "results": {
            "inproc_seconds": inproc_s,
            "mp1_seconds": mp1_s,
            f"mp{WORKERS}_seconds": mpn_s,
            "speedup_vs_inproc": speedup_vs_inproc,
            "scaling_vs_mp1": scaling_vs_mp1,
        },
    }
    cmp = compare_to_previous("mp_scaling", data)

    rows = [
        f"distributed airfoil {MESH[0]}x{MESH[1]}, {ITERS} iters, "
        f"native backend, {cores} core(s) visible",
        f"inproc  ({WORKERS} ranks, threads) {inproc_s:8.4f} s",
        f"mp1     (1 worker process)      {mp1_s:8.4f} s",
        f"mp{WORKERS}     ({WORKERS} worker processes)    {mpn_s:8.4f} s",
        f"mp{WORKERS} vs inproc {speedup_vs_inproc:5.2f}x    "
        f"mp{WORKERS} vs mp1 {scaling_vs_mp1:5.2f}x",
    ]
    if cores < WORKERS:
        rows.append(
            f"NOTE: {cores} core(s) < {WORKERS} workers — the >1.5x scaling "
            "gate is physically unattainable here and is not asserted; the "
            "honest figure above is what this machine can show"
        )
    if cmp.get("previous_found"):
        d = cmp["deltas"].get("results.speedup_vs_inproc")
        if d is not None:
            rows.append(
                f"speedup_vs_inproc {d['previous']:.2f} -> {d['current']:.2f} "
                f"({d['ratio']:.2f}x of baseline)"
            )
    emit("mp_scaling", rows, data=data)

    # trajectory: one appended point per bench run
    traj_path = RESULTS_DIR / "BENCH_mp.json"
    points = json.loads(traj_path.read_text())["points"] if traj_path.exists() else []
    points.append(
        {
            "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "cores": cores,
            "workers": WORKERS,
            "speedup_vs_inproc": round(speedup_vs_inproc, 3),
            "scaling_vs_mp1": round(scaling_vs_mp1, 3),
        }
    )
    traj_path.write_text(json.dumps({"points": points}, indent=2) + "\n")

    # sanity gates that hold on any machine: the mp executor's overhead must
    # stay bounded (a 4-worker mp run on one core interleaves the same work
    # the thread executor interleaves, plus fork + pipes)
    assert mpn_s < inproc_s * 3.0, "mp executor overhead out of bounds"
    # the real scaling gate, only where the hardware can express it
    if cores >= WORKERS:
        assert speedup_vs_inproc > 1.5, (
            f"expected >1.5x at {WORKERS} workers on {cores} cores, "
            f"got {speedup_vs_inproc:.2f}x"
        )
