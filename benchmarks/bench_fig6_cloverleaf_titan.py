"""Figure 6: CloverLeaf scaling on Titan (XK7), Original vs OPS.

Paper series: Original (MPI), OPS (MPI), Original (MPI+CUDA), OPS
(MPI+CUDA); strong scaling on 128-8192 nodes, weak scaling on 1-4096.
Expected shape: near-optimal CPU strong scaling up to 4096 nodes; GPU
strong scaling tails off hard (device starvation); weak scaling
near-optimal on both (paper: ~1% loss CPU, ~6% GPU); OPS tracks the
hand-tuned original throughout — here the Original and OPS curves coincide
by construction (the model prices traffic, which is identical) and the
DSL-overhead evidence is the measured pair in Fig 5's benchmark.

Communication volumes are measured from a real 4-rank decomposed run.
"""

import numpy as np
import pytest

from _support import characters_for, emit, scale_characters
from repro.apps.cloverleaf import CloverLeafApp, clover_bm_state
from repro.apps.cloverleaf.app import DistributedCloverLeafApp
from repro.machine import NVIDIA_K20X, TITAN_XK7_CPU
from repro.machine.catalog import GEMINI
from repro.ops.decomp import DecomposedBlock
from repro.perfmodel import ScalingModel
from repro.simmpi import World, run_spmd

STRONG_NODES = [128, 256, 512, 1024, 2048, 4096, 8192]
WEAK_NODES = [1, 4, 16, 64, 256, 1024, 4096]
STRONG_TOTAL = 15360 * 15360  # the strong-scaled problem class
WEAK_PER_NODE = 3840 * 3840  # one paper-sized problem per node

NX = NY = 96
STEPS = 2


def measure_clover_comm():
    """4-rank decomposed CloverLeaf run: halo exchange volumes."""
    gstate = clover_bm_state(NX, NY)
    dec = DecomposedBlock(4, gstate.block, gstate.all_dats, global_size=(NX, NY))
    world = World(4)

    def main(comm):
        DistributedCloverLeafApp(comm, dec, gstate).run(STEPS)

    run_spmd(4, main, world=world)
    total = world.total_counters()
    local = NX * NY / 4
    # each exchanged strip is depth*edge elements; back out the coefficient
    halo_elems = total.bytes_sent / 8 / max(total.halo_exchanges, 1)
    coeff = ScalingModel.calibrate_halo(halo_elems, local, dim=2)
    exch_per_step = total.halo_exchanges / 4 / STEPS
    return coeff, exch_per_step


@pytest.fixture(scope="module")
def curves():
    coeff, exch = measure_clover_comm()
    app = CloverLeafApp(nx=NX, ny=NY)
    chars = characters_for(lambda: app.run(STEPS), {})
    base = NX * NY

    def model(machine, gpu):
        return ScalingModel(
            machine,
            GEMINI,
            dim=2,
            gpu=gpu,
            neighbours=4,
            halo_coeff=coeff,
            bytes_per_halo_elem=8.0,
            exchanges_per_step=max(int(round(exch)), 1),
            reductions_per_step=1,
        )

    cpu, gpu = model(TITAN_XK7_CPU, False), model(NVIDIA_K20X, True)
    strong_chars = scale_characters(chars, STRONG_TOTAL / base)
    weak_chars = scale_characters(chars, WEAK_PER_NODE / base)
    return {
        ("cpu", "strong"): cpu.strong(strong_chars, STRONG_TOTAL, STRONG_NODES, steps=STEPS),
        ("gpu", "strong"): gpu.strong(strong_chars, STRONG_TOTAL, STRONG_NODES, steps=STEPS),
        ("cpu", "weak"): cpu.weak(weak_chars, WEAK_PER_NODE, WEAK_NODES, steps=STEPS),
        ("gpu", "weak"): gpu.weak(weak_chars, WEAK_PER_NODE, WEAK_NODES, steps=STEPS),
    }


def test_fig6_titan_scaling(benchmark, curves):
    benchmark.pedantic(measure_clover_comm, rounds=2, iterations=1)

    rows = []
    rows.append("strong scaling (fixed 15360^2-class problem)")
    rows.append(f"{'nodes':>8}" + "".join(f"{n:>10}" for n in STRONG_NODES))
    for plat in ("cpu", "gpu"):
        label = "Original/OPS (MPI)" if plat == "cpu" else "Original/OPS (MPI+CUDA)"
        rows.append(
            f"{label:<26}"
            + "".join(f"{p.seconds:10.4f}" for p in curves[(plat, "strong")])
        )
    rows.append("")
    rows.append("weak scaling (3840^2 cells per node)")
    rows.append(f"{'nodes':>8}" + "".join(f"{n:>10}" for n in WEAK_NODES))
    for plat in ("cpu", "gpu"):
        label = "Original/OPS (MPI)" if plat == "cpu" else "Original/OPS (MPI+CUDA)"
        rows.append(
            f"{label:<26}"
            + "".join(f"{p.seconds:10.4f}" for p in curves[(plat, "weak")])
        )
    emit(
        "fig6_cloverleaf_titan",
        rows,
        data={
            "seconds": {
                f"{plat} {mode}": [p.seconds for p in pts]
                for (plat, mode), pts in curves.items()
            },
        },
    )

    # near-optimal CPU strong scaling up to 4096 nodes (paper claim) ----------
    cpu_strong = curves[("cpu", "strong")]
    eff = ScalingModel.parallel_efficiency(cpu_strong)
    idx_4096 = STRONG_NODES.index(4096)
    assert eff[idx_4096] > 0.8

    # GPU strong scaling does NOT hold: efficiency collapses -------------------
    gpu_eff = ScalingModel.parallel_efficiency(curves[("gpu", "strong")])
    assert gpu_eff[-1] < 0.5
    assert gpu_eff[-1] < eff[-1]

    # GPU still faster than CPU where the device is full -----------------------
    assert curves[("gpu", "strong")][0].seconds < curves[("cpu", "strong")][0].seconds

    # weak scaling: ~1% CPU loss, ~6% GPU loss (paper numbers) ------------------
    cpu_weak_eff = ScalingModel.parallel_efficiency(curves[("cpu", "weak")], weak=True)
    gpu_weak_eff = ScalingModel.parallel_efficiency(curves[("gpu", "weak")], weak=True)
    assert cpu_weak_eff[-1] > 0.95
    assert gpu_weak_eff[-1] > 0.85
    assert gpu_weak_eff[-1] <= cpu_weak_eff[-1]
