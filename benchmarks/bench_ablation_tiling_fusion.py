"""Ablation: cache-block tiling and cross-loop fusion (Section VI locality).

Two experiments on real executions:

* tile-size sweep of the OPS ``tiled`` backend over a CloverLeaf-sized
  stencil sweep, with the model's cache-fit estimate alongside measured
  wall time;
* lazy loop-chain execution (fusion) vs eager execution of a pointwise
  pipeline: identical results, with the fusion statistics (group sizes =
  launches saved on real hardware).
"""

import time

import numpy as np
import pytest

from _support import emit
from repro import ops
from repro.ops.fusion import LoopChain
from repro.ops.tiling import tile_working_set_bytes

N = 256
TILE_EDGES = [16, 32, 64, 128, 256]


def smooth(a, b):
    b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])


def axpy(a, b):
    b[0, 0] = 2.0 * a[0, 0] + 1.0


def square(b, c):
    c[0, 0] = b[0, 0] * b[0, 0]


def fields():
    blk = ops.Block(2)
    a = ops.Dat(blk, (N, N), halo_depth=2)
    b = ops.Dat(blk, (N, N), halo_depth=2)
    c = ops.Dat(blk, (N, N), halo_depth=2)
    a.interior[...] = np.random.default_rng(0).standard_normal((N, N))
    return blk, a, b, c


def test_ablation_tile_size(benchmark):
    blk, a, b, c = fields()
    r = [(1, N - 1), (1, N - 1)]

    def run_tiled(edge):
        ops.par_loop(smooth, blk, r, a(ops.READ, ops.S2D_5PT), b(ops.WRITE),
                     backend="tiled", tile_shape=(edge, edge))

    benchmark.pedantic(lambda: run_tiled(64), rounds=3, iterations=1)

    ops.par_loop(smooth, blk, r, a(ops.READ, ops.S2D_5PT), c(ops.WRITE), backend="vec")
    ref = c.interior.copy()

    rows = [f"{'tile edge':>10}{'working set KiB':>17}{'measured ms':>13}{'correct':>9}"]
    ms_by_edge = {}
    for edge in TILE_EDGES:
        b.data[:] = 0
        t0 = time.perf_counter()
        run_tiled(edge)
        ms = (time.perf_counter() - t0) * 1e3
        ws = tile_working_set_bytes((edge, edge), n_fields=2) / 1024
        ok = np.allclose(b.interior, ref)
        ms_by_edge[edge] = ms
        rows.append(f"{edge:>10}{ws:>17.0f}{ms:>13.2f}{str(ok):>9}")
        assert ok
    emit(
        "ablation_tile_size",
        rows,
        data={"config": {"tile_edges": list(TILE_EDGES)}, "measured_ms": ms_by_edge},
    )


def test_ablation_fusion_vs_eager(benchmark):
    blk, a, b, c = fields()
    r = [(0, N), (0, N)]

    def eager():
        ops.par_loop(axpy, blk, r, a(ops.READ), b(ops.WRITE))
        ops.par_loop(square, blk, r, b(ops.READ), c(ops.WRITE))

    def fused():
        chain = LoopChain(tile_shape=(64, 64))
        chain.add(axpy, blk, r, a(ops.READ), b(ops.WRITE))
        chain.add(square, blk, r, b(ops.READ), c(ops.WRITE))
        return chain.execute()

    eager()
    ref = c.interior.copy()
    b.data[:] = 0
    c.data[:] = 0
    stats = fused()
    np.testing.assert_array_equal(c.interior, ref)

    benchmark.pedantic(fused, rounds=3, iterations=1)

    t0 = time.perf_counter()
    eager()
    t_eager = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused()
    t_fused = time.perf_counter() - t0

    rows = [
        f"chain of 2 pointwise loops over {N}x{N}:",
        f"  fusion groups: {stats['groups']} (largest {stats['largest_group']}, "
        f"{stats['tiles']} tiles)",
        f"  eager {t_eager * 1e3:.2f} ms vs fused {t_fused * 1e3:.2f} ms",
        "  (on real hardware fusion additionally saves one kernel launch per",
        "   fused loop and keeps the tile resident in cache between loops)",
    ]
    emit(
        "ablation_fusion",
        rows,
        data={
            "config": {"grid": [N, N]},
            "wall_seconds": {"eager": t_eager, "fused": t_fused},
            "fusion_stats": dict(stats),
        },
    )
    assert stats["groups"] == 1
    assert stats["largest_group"] == 2
