"""Figure 2: Airfoil single-node performance across programming models.

Paper series: CPU (MPI), CPU (MPI vectorized), CPU (MPI+OpenMP),
CPU (MPI+OpenMP vectorized), Xeon Phi (MPI+OpenMP vectorized), CUDA K40.
Expected shape: vectorisation helps, hybrid ≈ pure MPI, the Phi is held
back by the unvectorisable indirect loops, the K40 wins outright.
"""

import pytest

from _support import AIRFOIL_KERNEL_INFO, characters_for, emit, scale_characters
from repro.apps.airfoil import AirfoilApp
from repro.machine import NVIDIA_K40, XEON_E5_2697V2, XEON_PHI_5110P
from repro.perfmodel import PlatformConfig, predict_chain
from repro.perfmodel.predict import standard_cpu_configs

MESH = (600, 360)
ITERS = 2


def airfoil_characters():
    app = AirfoilApp(nx=MESH[0], ny=MESH[1], jitter=0.1)
    chars = characters_for(lambda: app.run(ITERS), AIRFOIL_KERNEL_INFO)
    # extrapolate to the original benchmark's 720k-cell mesh
    return scale_characters(chars, 720_000 / (MESH[0] * MESH[1]))


CONFIGS = standard_cpu_configs(XEON_E5_2697V2) + [
    PlatformConfig("Xeon Phi (MPI+OpenMP vectorized)", XEON_PHI_5110P, vectorised=True),
    PlatformConfig("CUDA K40", NVIDIA_K40, gpu=True),
]


def predictions():
    chars = airfoil_characters()
    return {cfg.label: predict_chain(cfg, chars)[0] for cfg in CONFIGS}


def test_fig2_shape_and_report(benchmark):
    app = AirfoilApp(nx=MESH[0], ny=MESH[1], jitter=0.1)
    benchmark.pedantic(lambda: app.iteration(), rounds=3, iterations=1)

    times = predictions()
    rows = [f"{label:<42} {secs:8.4f} s" for label, secs in times.items()]
    emit(
        "fig2_airfoil_single_node",
        rows,
        data={
            "config": {"mesh": list(MESH), "iterations": ITERS},
            "predicted_seconds": times,
        },
    )

    # paper shapes -----------------------------------------------------------
    # vectorisation helps on the CPU
    assert times["MPI vectorized"] < times["MPI"]
    # hybrid MPI+OpenMP does not beat pure MPI on one node
    assert times["MPI+OpenMP vectorized"] >= times["MPI vectorized"] * 0.99
    # the K40 is the fastest platform
    assert times["CUDA K40"] == min(times.values())
    # the Phi does not fulfil its bandwidth promise on this indirect code:
    # it lands between the CPU and the GPU, well off its 140 GB/s headline
    assert times["CUDA K40"] < times["Xeon Phi (MPI+OpenMP vectorized)"]
    # GPU wins by a 2-4x class margin over the best CPU config (paper bar
    # heights: ~17s CPU best vs ~7s K40)
    ratio = times["MPI vectorized"] / times["CUDA K40"]
    assert 1.05 < ratio < 6.0
