"""Native compiled-kernel backend speedup: interpreted vs execplan vs native.

Measures the wall-clock effect of the native tier (C kernels compiled into
the on-disk object cache, slotted under the execplan registries) on the
Airfoil (op2) and CloverLeaf (ops) proxy apps.  Three executor tiers are
timed on identical runs:

* ``interpreted`` — ``use_execplan=False``: the reference Python path,
* ``vec``         — execplan on, native off: cached plans replaying the
  vectorised NumPy kernels,
* ``native``      — execplan on, native on: the same plans dispatching the
  compiled C loop bodies.

Cold-compile cost (first process ever: every admission runs ``cc``) is
reported separately from the warm-cache path (fresh process, populated
disk cache: admission only dlopens), and the steady state is gated
miss-free.  Results land in ``benchmarks/results/native_speedup.{txt,json}``
with a :func:`compare_to_previous` diff, plus one appended trajectory point
in ``benchmarks/results/BENCH_native.json``.
"""

import json
import shutil
import tempfile
import time

from _support import RESULTS_DIR, collect, compare_to_previous, counters_summary, emit
from repro import op2, ops
from repro.common.config import swap
from repro.native import cache as native_cache

AIRFOIL_MESH = (100, 60)
AIRFOIL_ITERS = 40
CLOVER_MESH = (48, 48)
CLOVER_STEPS = 30
REPEATS = 3


def _clear_plans():
    op2.clear_plan_cache()
    ops.clear_plan_cache()


def _timed(run):
    t0 = time.perf_counter()
    counters, _ = collect(run)
    return time.perf_counter() - t0, counters


def _measure_steady(run, **cfg):
    """Best-of-N wall time after an untimed warm-up pass (plan + native
    admission both settle on the warm-up, exactly like the execplan bench)."""
    _clear_plans()
    best, counters = float("inf"), None
    with swap(**cfg):
        collect(run)
        for _ in range(REPEATS):
            seconds, counters = _timed(run)
            best = min(best, seconds)
    return best, counters


def _airfoil_run():
    from repro.apps.airfoil.app import AirfoilApp

    app = AirfoilApp(nx=AIRFOIL_MESH[0], ny=AIRFOIL_MESH[1], jitter=0.2, backend="vec")
    return lambda: app.run(AIRFOIL_ITERS)


def _cloverleaf_run():
    from repro.apps.cloverleaf import CloverLeafApp

    app = CloverLeafApp(nx=CLOVER_MESH[0], ny=CLOVER_MESH[1], backend="vec")
    return lambda: app.run(CLOVER_STEPS)


def _native_summary(counters):
    return {
        "native_calls": counters.native_calls,
        "native_compiles": counters.native_compiles,
        "cache_hits": counters.native_cache_hits,
        "cache_misses": counters.native_cache_misses,
        "fallbacks": counters.native_fallbacks,
    }


def test_native_speedup():
    results = {}
    cache_root = tempfile.mkdtemp(prefix="repro-bench-natcache-")
    try:
        for label, make_run in (("airfoil", _airfoil_run), ("cloverleaf", _cloverleaf_run)):
            run = make_run()

            interp_s, _ = _measure_steady(run, use_execplan=False)
            vec_s, _ = _measure_steady(run, use_execplan=True, native=False)

            # cold compile: empty disk cache, every admission runs cc.  One
            # timed pass — this is a one-off per machine, not a steady state.
            native_cache.clear_memory_cache()
            _clear_plans()
            with swap(use_execplan=True, native=True, native_cache_dir=cache_root):
                cold_s, cold_counters = _timed(run)

                # warm cache, cold process (simulated): plans and dlopen
                # handles dropped, disk objects kept — admission only reloads.
                native_cache.clear_memory_cache()
                _clear_plans()
                warm_start_s, warm_counters = _timed(run)

            # steady state: everything warm, best of N
            native_s, steady_counters = _measure_steady(
                run, use_execplan=True, native=True, native_cache_dir=cache_root
            )

            results[label] = {
                "interpreted_seconds": interp_s,
                "vec_seconds": vec_s,
                "native_seconds": native_s,
                "cold_compile_seconds": cold_s,
                "warm_cache_first_run_seconds": warm_start_s,
                "speedup_vs_interpreted": interp_s / native_s,
                "speedup_vs_vec": vec_s / native_s,
                "cold_native": _native_summary(cold_counters),
                "warm_native": _native_summary(warm_counters),
                "steady_native": _native_summary(steady_counters),
                "steady_counters": counters_summary(steady_counters),
            }
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    data = {
        "config": {
            "airfoil_mesh": list(AIRFOIL_MESH),
            "airfoil_iterations": AIRFOIL_ITERS,
            "cloverleaf_mesh": list(CLOVER_MESH),
            "cloverleaf_steps": CLOVER_STEPS,
            "repeats": REPEATS,
            "backend": "vec",
        },
        "results": results,
    }
    cmp = compare_to_previous("native_speedup", data)

    rows = []
    for label, r in results.items():
        rows.append(
            f"{label:<11} interpreted {r['interpreted_seconds']:8.4f} s   "
            f"vec {r['vec_seconds']:8.4f} s   native {r['native_seconds']:8.4f} s   "
            f"{r['speedup_vs_interpreted']:5.2f}x vs interpreted, "
            f"{r['speedup_vs_vec']:5.2f}x vs vec"
        )
        rows.append(
            f"{'':<11} cold compile {r['cold_compile_seconds']:8.4f} s "
            f"({r['cold_native']['native_compiles']} cc runs)   "
            f"warm cache {r['warm_cache_first_run_seconds']:8.4f} s "
            f"({r['warm_native']['cache_hits']} hits, "
            f"{r['warm_native']['cache_misses']} misses)   "
            f"steady {r['steady_native']['native_calls']} native calls, "
            f"{r['steady_native']['fallbacks']} fallbacks"
        )
    if cmp.get("previous_found"):
        rows.append("")
        for label in results:
            d = cmp["deltas"].get(f"results.{label}.native_seconds")
            if d is not None:
                rows.append(
                    f"{label:<11} native_seconds {d['previous']:.4f} -> "
                    f"{d['current']:.4f} ({d['ratio']:.2f}x of baseline)"
                )
    emit("native_speedup", rows, data=data)

    # trajectory: one appended point per bench run, so future sessions can
    # chart the native tier's speedup over the repo's history
    traj_path = RESULTS_DIR / "BENCH_native.json"
    points = json.loads(traj_path.read_text())["points"] if traj_path.exists() else []
    points.append(
        {
            "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **{
                f"{label}_speedup_vs_interpreted": round(
                    r["speedup_vs_interpreted"], 3
                )
                for label, r in results.items()
            },
            **{
                f"{label}_speedup_vs_vec": round(r["speedup_vs_vec"], 3)
                for label, r in results.items()
            },
        }
    )
    traj_path.write_text(json.dumps({"points": points}, indent=2) + "\n")

    # gates from the issue's acceptance bar: >=3x over interpreted, a real
    # wall-clock win over vec on at least one app, and a miss-free warm cache
    assert max(r["speedup_vs_interpreted"] for r in results.values()) >= 3.0
    assert any(r["speedup_vs_vec"] > 1.0 for r in results.values())
    for label, r in results.items():
        assert r["warm_native"]["native_compiles"] == 0, label
        assert r["warm_native"]["cache_misses"] == 0, label
        assert r["steady_native"]["native_calls"] > 0, label
        assert r["cold_native"]["native_compiles"] > 0, label
