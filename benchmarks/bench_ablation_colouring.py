"""Ablation: colouring mini-block size (the op_plan block_size knob).

Smaller blocks colour with fewer colours (fewer conflicts per block) but
pay more launch/bookkeeping; larger blocks amortise overhead but serialise
more colours — the trade-off behind OP2's default.  The GPU model prices
the colour count via its serialisation penalty.
"""

import pytest

from _support import emit
from repro.apps.airfoil import generate_mesh
from repro.machine import NVIDIA_K40
from repro.machine.gpu import GpuExecutionModel, GpuLoopShape
from repro.op2.plan import build_plan, clear_plan_cache

BLOCK_SIZES = [16, 32, 64, 128, 256, 512]


@pytest.fixture(scope="module")
def race_args():
    mesh = generate_mesh(40, 32, jitter=0.1)
    from repro import op2

    args = [
        mesh.res(op2.INC, mesh.edge2cell, 0),
        mesh.res(op2.INC, mesh.edge2cell, 1),
    ]
    return mesh.edges, args


def test_ablation_colouring_block_size(benchmark, race_args):
    edges, args = race_args
    clear_plan_cache()
    benchmark.pedantic(
        lambda: (clear_plan_cache(), build_plan(edges, args, block_size=128)),
        rounds=3,
        iterations=1,
    )

    gpu = GpuExecutionModel(NVIDIA_K40)
    rows = [f"{'block size':>10}{'blocks':>8}{'block colours':>14}{'elem colours':>14}{'GPU penalty':>12}"]
    colours = {}
    for bs in BLOCK_SIZES:
        clear_plan_cache()
        plan = build_plan(edges, args, block_size=bs)
        penalty = gpu.colour_penalty(GpuLoopShape(colours=plan.n_block_colours))
        colours[bs] = plan.n_block_colours
        rows.append(
            f"{bs:>10}{plan.n_blocks:>8}{plan.n_block_colours:>14}"
            f"{plan.n_elem_colours:>14}{penalty:>12.3f}"
        )
    emit(
        "ablation_colouring_block_size",
        rows,
        data={"config": {"block_sizes": list(BLOCK_SIZES)}, "block_colours": colours},
    )

    # every plan is race-free (the invariant), and small blocks never need
    # more colours than the biggest blocks on this mesh
    assert colours[16] <= colours[512]
    # colouring always needs at least 2 colours for a shared-cell edge loop
    assert all(c >= 2 for c in colours.values())
