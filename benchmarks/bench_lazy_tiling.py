"""Lazy cross-loop tiling: modelled data-movement win over eager execution.

Runs CloverLeaf and the Sod shock tube on the ``vec`` backend, eager vs
lazy (``configure(lazy=True)``), and reports:

* **bitwise equality** of the final fields — the hard gate; laziness must
  be invisible;
* the **modelled DRAM traffic reduction**: a dat touched by ``k`` loops of
  a fused tile group is streamed from memory once instead of ``k`` times
  (``PerfCounters.lazy_bytes_saved``, the same cache-residency argument as
  arXiv:1704.00693).  This substrate executes tiles as NumPy sub-range
  ufuncs, so the win is reported as modelled traffic, not host wall time —
  wall time on test-sized meshes is dominated by Python dispatch;
* fusion and chain-cache effectiveness: fused groups/tiles per flush and
  the schedule-cache hit rate across timesteps.

Writes ``benchmarks/results/lazy_tiling.{txt,json}``; the CI lazy-smoke
job fails on any divergence or if no tiles fuse (a vacuous run).
"""

import time

import numpy as np

from _support import collect, compare_to_previous, comparison_lines, emit
from repro.common.config import swap
from repro.ops import lazy as lazy_mod

CLOVER_MESH = (48, 48)
CLOVER_STEPS = 20
SOD_CELLS = 600
SOD_STEPS = 40
REPEATS = 3


def _cloverleaf_run():
    from repro.apps.cloverleaf import CloverLeafApp

    app = CloverLeafApp(nx=CLOVER_MESH[0], ny=CLOVER_MESH[1], backend="vec")

    def run():
        app.run(CLOVER_STEPS)
        lazy_mod.flush("bench_end")
        return {
            "density": app.st.density0.interior.copy(),
            "energy": app.st.energy0.interior.copy(),
            "xvel": app.st.xvel0.interior.copy(),
            "yvel": app.st.yvel0.interior.copy(),
        }

    return run


def _sod_run():
    from repro.apps.sod import SodApp

    app = SodApp(n=SOD_CELLS, backend="vec")

    def run():
        for _ in range(SOD_STEPS):
            app.step()
        lazy_mod.flush("bench_end")
        return {k: v.copy() for k, v in app.profiles().items()}

    return run


def _measure(make_run, lazy: bool):
    """Best-of-N wall time plus counters, on a fresh app per mode."""
    lazy_mod.clear_chain_cache()
    best, counters, state = float("inf"), None, None
    with swap(lazy=lazy):
        run = make_run()
        collect(run)  # warm-up: plan compilation, chain-schedule build
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            counters, state = collect(run)
            best = min(best, time.perf_counter() - t0)
    return best, counters, state


def test_lazy_tiling_movement():
    results = {}
    diverged = []
    for label, make_run in (("cloverleaf_vec", _cloverleaf_run), ("sod_vec", _sod_run)):
        eager_s, eager_c, eager_state = _measure(make_run, lazy=False)
        lazy_s, lazy_c, lazy_state = _measure(make_run, lazy=True)

        for key in eager_state:
            if not np.array_equal(eager_state[key], lazy_state[key]):
                diverged.append(f"{label}:{key}")

        recs = list(lazy_c.loops.values())
        moved = sum(r.bytes_moved for r in recs)
        saved = lazy_c.lazy_bytes_saved
        results[label] = {
            "eager_seconds": eager_s,
            "lazy_seconds": lazy_s,
            "bytes_moved": moved,
            "bytes_saved_model": saved,
            "movement_reduction": saved / moved if moved else 0.0,
            "lazy_flushes": lazy_c.lazy_flushes,
            "lazy_loops": lazy_c.lazy_loops,
            "fused_groups": lazy_c.lazy_groups,
            "fused_tiles": lazy_c.lazy_tiles,
            "chain_hits": lazy_c.chain_hits,
            "chain_misses": lazy_c.chain_misses,
            "chain_hit_rate": lazy_c.chain_hit_rate,
            "bitwise_equal": all(not d.startswith(label) for d in diverged),
        }

    # hard gates: laziness must be invisible and must actually fuse
    assert not diverged, f"lazy diverged from eager: {diverged}"
    for label, r in results.items():
        assert r["fused_tiles"] > 0, f"{label}: no fused tiles (vacuous run)"
        assert r["bytes_saved_model"] > 0, f"{label}: no modelled movement win"
        assert r["chain_hits"] > 0, f"{label}: schedule cache never hit"

    cmp = compare_to_previous("lazy_tiling", results)
    rows = [
        f"{'app':<16}{'eager s':>9}{'lazy s':>9}{'GB moved':>10}"
        f"{'GB saved':>10}{'saved %':>9}{'tiles':>7}{'cache':>10}",
        "-" * 80,
    ]
    for label, r in results.items():
        rows.append(
            f"{label:<16}{r['eager_seconds']:>9.4f}{r['lazy_seconds']:>9.4f}"
            f"{r['bytes_moved'] / 1e9:>10.3f}{r['bytes_saved_model'] / 1e9:>10.3f}"
            f"{100 * r['movement_reduction']:>8.1f}%{r['fused_tiles']:>7}"
            f"{r['chain_hits']:>5}/{r['chain_misses']:<4}"
        )
    rows.append("")
    rows.append("vs committed baseline (previous -> current):")
    rows.extend(
        comparison_lines(
            cmp,
            [
                "cloverleaf_vec.movement_reduction",
                "cloverleaf_vec.fused_tiles",
                "sod_vec.movement_reduction",
                "sod_vec.fused_tiles",
            ],
        )
    )
    emit("lazy_tiling", rows, results)


if __name__ == "__main__":
    test_lazy_tiling_movement()
