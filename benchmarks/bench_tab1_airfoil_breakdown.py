"""Table I: per-loop time and bandwidth breakdown for Airfoil.

Paper rows: save_soln, adt_calc, res_calc, update on the E5-2697, the Xeon
Phi and the K40.  Expected shape: the direct loops (save_soln, update) run
near each machine's achievable bandwidth; adt_calc needs vectorisation;
res_calc's gathers/scatters collapse the Phi's effective bandwidth (25 GB/s
class in the paper) and hold the K40 to a fraction of its streaming rate.
"""

import pytest

from _support import AIRFOIL_KERNEL_INFO, characters_for, emit, scale_characters
from repro.apps.airfoil import AirfoilApp
from repro.machine import NVIDIA_K40, XEON_E5_2697V2, XEON_PHI_5110P
from repro.perfmodel import PlatformConfig, predict_loop

LOOPS = ["save_soln", "adt_calc", "res_calc", "update"]

PLATFORMS = [
    PlatformConfig("E5-2697", XEON_E5_2697V2, vectorised=True),
    PlatformConfig("Xeon Phi", XEON_PHI_5110P, vectorised=True),
    PlatformConfig("NVIDIA K40", NVIDIA_K40, gpu=True),
]


@pytest.fixture(scope="module")
def chars():
    app = AirfoilApp(nx=600, ny=360, jitter=0.1)
    chars = characters_for(lambda: app.run(2), AIRFOIL_KERNEL_INFO)
    return scale_characters(chars, 720_000 / (600 * 360))


def test_table1_breakdown(benchmark, chars):
    benchmark.pedantic(lambda: [predict_loop(p, chars[l]) for p in PLATFORMS for l in LOOPS],
                       rounds=5, iterations=1)

    table = {}
    rows = [f"{'Kernel':<12}" + "".join(f"{p.label:>22}" for p in PLATFORMS)]
    rows.append(f"{'':<12}" + "".join(f"{'time(s)   BW(GB/s)':>22}" for _ in PLATFORMS))
    for loop in LOOPS:
        cells = []
        for p in PLATFORMS:
            pred = predict_loop(p, chars[loop])
            table[(loop, p.label)] = pred
            cells.append(f"{pred.seconds:9.4f} {pred.bandwidth_gbs:9.1f}")
        rows.append(f"{loop:<12}" + "".join(f"{c:>22}" for c in cells))
    emit(
        "tab1_airfoil_breakdown",
        rows,
        data={
            "predictions": {
                f"{loop} | {label}": {
                    "seconds": pred.seconds,
                    "bandwidth_gbs": pred.bandwidth_gbs,
                }
                for (loop, label), pred in table.items()
            },
        },
    )

    # direct loops: near-peak bandwidth on the CPU -----------------------------
    for loop in ("save_soln", "update"):
        bw = table[(loop, "E5-2697")].bandwidth_gbs
        assert bw > 0.8 * XEON_E5_2697V2.stream_bw_gbs

    # res_calc on the Phi collapses (paper: 25 GB/s vs 140 GB/s STREAM) -------
    bw_phi_res = table[("res_calc", "Xeon Phi")].bandwidth_gbs
    assert bw_phi_res < 0.35 * XEON_PHI_5110P.stream_bw_gbs

    # res_calc is each platform's slowest of the four loops --------------------
    for p in PLATFORMS:
        res_t = table[("res_calc", p.label)].seconds
        assert res_t == max(table[(l, p.label)].seconds for l in LOOPS)

    # K40 direct loops beat the CPU's by the bandwidth ratio class -------------
    k40_up = table[("update", "NVIDIA K40")]
    cpu_up = table[("update", "E5-2697")]
    assert k40_up.seconds < cpu_up.seconds
    assert k40_up.bandwidth_gbs > 1.5 * cpu_up.bandwidth_gbs

    # the Phi's direct-loop bandwidth exceeds the CPU's (update row: 89 vs 79)
    assert (
        table[("update", "Xeon Phi")].bandwidth_gbs
        > table[("update", "E5-2697")].bandwidth_gbs * 0.9
    )
