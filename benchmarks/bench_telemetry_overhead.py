"""Telemetry overhead: disabled-tracer and enabled-tracer cost on Airfoil.

The tracer's design contract (DESIGN.md "Telemetry") is that instrumentation
costs one module-attribute load and one branch per event when tracing is
off.  This benchmark measures that claim on the Airfoil proxy app's warm
compiled path — the hot loop every other optimisation in the repo fights
for — and reports the enabled-tracer cost alongside it for context.

Methodology: baseline and instrumented-but-disabled runs are the *same
binary state* (tracing was never compiled out), so the disabled row is an
A/A comparison whose difference is pure measurement noise plus the branch
cost.  Best-of-N on a warmed app suppresses allocator and cache noise; the
CI gate asserts the disabled overhead stays within the paper-style 2%
acceptance threshold.

Writes ``benchmarks/results/telemetry_overhead.{txt,json}``.
"""

import time

from _support import collect, emit
from repro import op2, ops
from repro.telemetry import tracer as trace_mod
from repro.telemetry.tracer import Tracer

MESH = (100, 60)
ITERS = 40
REPEATS = 7
MAX_DISABLED_OVERHEAD = 0.02  # acceptance criterion: <= 2%


def _make_run():
    from repro.apps.airfoil.app import AirfoilApp

    app = AirfoilApp(nx=MESH[0], ny=MESH[1], jitter=0.2, backend="vec")
    return lambda: app.run(ITERS)


def _timed(run, tracer):
    """One timed run under the given tracer (or None = tracing off)."""
    prev = trace_mod.disable()
    try:
        if tracer is not None:
            tracer.clear()
            trace_mod.enable(tracer)
        t0 = time.perf_counter()
        collect(run)
        return time.perf_counter() - t0
    finally:
        trace_mod.disable()
        if prev is not None:
            trace_mod.enable(prev)


def test_telemetry_overhead():
    # Each state gets its own fresh app (the flow field evolves run over run,
    # so sharing one app would time different floating-point workloads), and
    # the timed repeats interleave round-robin: machine noise comes in
    # multi-second gusts here, so adjacent-in-time samples keep the
    # best-of-N ratios fair where back-to-back blocks would not.
    op2.clear_plan_cache()
    ops.clear_plan_cache()
    tracer = Tracer()
    states = [("baseline", _make_run(), None),
              ("disabled", _make_run(), None),
              ("enabled", _make_run(), tracer)]
    for _, run, _tr in states:
        collect(run)  # warm-up: kernel vectorisation + plan compilation
    best = {name: float("inf") for name, _, _ in states}
    for _ in range(REPEATS):
        for name, run, tr in states:
            best[name] = min(best[name], _timed(run, tr))
    baseline_s, disabled_s, enabled_s = (
        best["baseline"], best["disabled"], best["enabled"]
    )
    n_events = len(tracer.events())

    disabled_overhead = disabled_s / baseline_s - 1.0
    enabled_overhead = enabled_s / baseline_s - 1.0
    per_event_us = 1e6 * max(enabled_s - baseline_s, 0.0) / max(n_events, 1)

    rows = [
        f"airfoil vec {MESH[0]}x{MESH[1]} x{ITERS} iters, best of {REPEATS}",
        f"{'tracer state':<22}{'seconds':>10}{'overhead':>10}",
        "-" * 42,
        f"{'off (baseline)':<22}{baseline_s:>10.4f}{'':>10}",
        f"{'off (A/A repeat)':<22}{disabled_s:>10.4f}{100 * disabled_overhead:>9.2f}%",
        f"{'on':<22}{enabled_s:>10.4f}{100 * enabled_overhead:>9.2f}%",
        f"enabled run recorded {n_events} events "
        f"(~{per_event_us:.2f} us/event marginal cost)",
    ]
    emit(
        "telemetry_overhead",
        rows,
        data={
            "config": {
                "mesh": list(MESH),
                "iterations": ITERS,
                "repeats": REPEATS,
                "backend": "vec",
                "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            },
            "results": {
                "baseline_seconds": baseline_s,
                "disabled_seconds": disabled_s,
                "disabled_overhead": disabled_overhead,
                "enabled_seconds": enabled_s,
                "enabled_overhead": enabled_overhead,
                "events_recorded": n_events,
                "per_event_microseconds": per_event_us,
            },
        },
    )

    # the acceptance gate: a disabled tracer must be free (within noise)
    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-tracer overhead {100 * disabled_overhead:.2f}% exceeds "
        f"{100 * MAX_DISABLED_OVERHEAD:.0f}%"
    )
    # sanity: the enabled run actually traced the app
    assert n_events > 0
