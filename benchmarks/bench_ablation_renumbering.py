"""Ablation: RCM mesh renumbering (the OP2 locality optimisation).

Measures, on the Hydra-proxy mesh: the locality score and map bandwidth of
a scrambled vs RCM-renumbered numbering; the *real* wall-clock effect on
the gather-heavy loops (NumPy fancy indexing is itself locality
sensitive); and the modelled single-node effect (the Fig 3 'OP2 unopt vs
OP2' gap).
"""

import time

import numpy as np
import pytest

from _support import emit
from repro.apps.hydra import HydraApp, generate_hydra_mesh
from repro.op2.renumber import bandwidth, locality_score, rcm_permutation


def scrambled(nx=80, ny=48):
    mesh = generate_hydra_mesh(nx, ny, jitter=0.1)
    rng = np.random.default_rng(11)
    perm = rng.permutation(mesh.fine.cells.size)
    from repro.op2.renumber import apply_permutation

    cell_dats = [d for d in mesh.all_dats if d.set is mesh.fine.cells]
    cell_dats += [mesh.fine.q, mesh.fine.qold, mesh.fine.adt, mesh.fine.res]
    apply_permutation(perm, cell_dats, [mesh.fine.edge2cell, mesh.fine.bedge2cell])
    mesh.fine2coarse.values[:] = mesh.fine2coarse.values[perm]
    mesh.fine.cell2node.values[:] = mesh.fine.cell2node.values[perm]
    return mesh


def test_ablation_renumbering(benchmark):
    mesh = scrambled()
    benchmark.pedantic(lambda: rcm_permutation(mesh.fine.edge2cell), rounds=3, iterations=1)

    loc_before = locality_score(mesh.fine.edge2cell)
    bw_before = bandwidth(mesh.fine.edge2cell)

    app = HydraApp(mesh)
    t0 = time.perf_counter()
    r_before = app.run(2)
    t_scrambled = time.perf_counter() - t0

    mesh2 = scrambled()
    app2 = HydraApp(mesh2)
    app2.renumber()
    loc_after = locality_score(mesh2.fine.edge2cell)
    bw_after = bandwidth(mesh2.fine.edge2cell)
    t0 = time.perf_counter()
    r_after = app2.run(2)
    t_renumbered = time.perf_counter() - t0

    rows = [
        f"{'':<22}{'scrambled':>12}{'RCM':>12}",
        f"{'locality score':<22}{loc_before:>12.1f}{loc_after:>12.1f}",
        f"{'map bandwidth':<22}{bw_before:>12}{bw_after:>12}",
        f"{'wall-clock (s)':<22}{t_scrambled:>12.3f}{t_renumbered:>12.3f}",
        f"{'rms (must match)':<22}{r_before:>12.3e}{r_after:>12.3e}",
    ]
    emit(
        "ablation_renumbering",
        rows,
        data={
            "locality_score": {"scrambled": loc_before, "renumbered": loc_after},
            "map_bandwidth": {"scrambled": int(bw_before), "renumbered": int(bw_after)},
            "wall_seconds": {"scrambled": t_scrambled, "renumbered": t_renumbered},
        },
    )

    # renumbering is a pure optimisation: identical physics
    assert r_after == pytest.approx(r_before, rel=1e-12)
    # and a dramatic locality improvement
    assert loc_after < 0.2 * loc_before
    assert bw_after < bw_before
