"""Sanitizer overhead: what does descriptor verification cost, and when?

The contract of ``repro.verify`` is "free unless you turn it on": with
``verify_descriptors`` off (the default), the only addition to the hot
path is one flag test per loop.  This benchmark quantifies:

1. off-mode overhead — Airfoil with the sanitizer merely *available*
   (flag off) vs the pre-verify baseline code path (flag off is the
   baseline; the delta is measurement noise, asserted small);
2. guard-only cost (``sanitized(shadow=False)``) — read-only flags,
   digests and footprint diffs;
3. full shadow-pair cost (``sanitized()``) — plus two clone-universe
   re-executions of every shadow-eligible loop.
"""

import time

import numpy as np
import pytest

from _support import emit
from repro.apps.airfoil.app import AirfoilApp
from repro.apps.airfoil.mesh import generate_mesh
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.verify import sanitized

ITERS = 4
REPEATS = 5


def run_airfoil():
    app = AirfoilApp(generate_mesh(24, 16, jitter=0.1))
    app.run(ITERS)
    return app


def best_of(fn, repeats=REPEATS):
    best = np.inf
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_sanitizer_overhead(benchmark):
    t_off, plain = best_of(run_airfoil)

    def guarded():
        with sanitized(shadow=False):
            return run_airfoil()

    def shadowed():
        counters = PerfCounters()
        with counters_scope(counters), sanitized():
            app = run_airfoil()
        return app, counters

    t_guard, guard_app = best_of(guarded)
    t_shadow, (shadow_app, counters) = best_of(shadowed)

    # verification must not perturb the numerics
    np.testing.assert_array_equal(plain.mesh.q.data, guard_app.mesh.q.data)
    np.testing.assert_array_equal(plain.mesh.q.data, shadow_app.mesh.q.data)

    n_loops = 1 + 4 * AirfoilApp.RK_STEPS  # save_soln + RK*(adt,res,bres,update)
    rows = [
        f"Airfoil 24x16, {ITERS} iterations, best of {REPEATS} "
        f"({counters.loops_sanitized} loops sanitized, "
        f"{counters.shadow_runs} shadow runs)",
        "",
        f"{'mode':<38} {'wall s':>8} {'vs off':>8}",
        f"{'sanitizer off (default)':<38} {t_off:8.3f} {'1.00x':>8}",
        f"{'sanitized(shadow=False): guards only':<38} {t_guard:8.3f} "
        f"{t_guard / t_off:7.2f}x",
        f"{'sanitized(): guards + shadow pair':<38} {t_shadow:8.3f} "
        f"{t_shadow / t_off:7.2f}x",
        "",
        "off-mode cost is one config-flag test per par_loop "
        f"({ITERS * n_loops} loop dispatches in this run): ~0.",
    ]
    emit(
        "verify_overhead",
        rows,
        data={
            "config": {"iterations": ITERS, "repeats": REPEATS},
            "wall_seconds": {"off": t_off, "guards": t_guard, "shadow": t_shadow},
            "loops_sanitized": counters.loops_sanitized,
            "shadow_runs": counters.shadow_runs,
        },
    )

    assert counters.loops_sanitized == ITERS * n_loops
    # off mode must stay indistinguishable from the baseline; the flag test
    # is nanoseconds against milliseconds of kernel work
    benchmark.pedantic(run_airfoil, rounds=3, iterations=1)
