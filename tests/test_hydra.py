"""Hydra proxy: parity, distributed execution, optimisation invariance."""

import numpy as np
import pytest

from repro.apps.hydra import HydraApp, HydraReference, generate_hydra_mesh
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope, loop_chain_record
from repro.simmpi import run_spmd


class TestMesh:
    def test_two_levels(self):
        m = generate_hydra_mesh(8, 6)
        assert m.fine.cells.size == 48
        assert m.coarse_cells.size == 12

    def test_fine2coarse_covers_coarse(self):
        m = generate_hydra_mesh(8, 6)
        assert set(m.fine2coarse.values[:, 0]) == set(range(12))
        counts = np.bincount(m.fine2coarse.values[:, 0])
        assert (counts == 4).all()

    def test_odd_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_hydra_mesh(7, 6)

    def test_initial_state_physical(self):
        m = generate_hydra_mesh(8, 6)
        assert (m.q.data[:, 0] > 0).all()  # density
        assert (m.q.data[:, 5] > 0).all()  # omega


class TestParity:
    def test_reference_matches_op2(self):
        m = generate_hydra_mesh(10, 8, jitter=0.1)
        app = HydraApp(m)
        ref = HydraReference(m)
        r1 = app.run(3)
        r2 = ref.run(3)
        assert r1 == pytest.approx(r2, rel=1e-13)
        np.testing.assert_allclose(m.q.data, ref.q, rtol=1e-12, atol=1e-14)

    def test_state_stays_finite(self):
        m = generate_hydra_mesh(10, 8, jitter=0.1)
        HydraApp(m).run(10)
        assert np.isfinite(m.q.data).all()
        assert (m.q.data[:, 0] > 0).all()


class TestLoopProfile:
    def test_hydra_has_more_loops_than_airfoil(self):
        """The paper's Hydra characterisation: a larger, loop-heavier app."""
        from repro.apps.airfoil import AirfoilApp

        with loop_chain_record() as hydra_events:
            HydraApp(generate_hydra_mesh(6, 4)).iteration()
        with loop_chain_record() as airfoil_events:
            AirfoilApp(nx=6, ny=4).iteration()
        assert len(hydra_events) > 2 * len(airfoil_events)
        assert len({e.name for e in hydra_events}) > len({e.name for e in airfoil_events})

    def test_hydra_moves_more_bytes_per_cell(self):
        """Paper: Hydra 'moves many times more data per grid point'."""
        from repro.apps.airfoil import AirfoilApp

        ch, ca = PerfCounters(), PerfCounters()
        mh = generate_hydra_mesh(8, 6)
        with counters_scope(ch):
            HydraApp(mh).iteration()
        aa = AirfoilApp(nx=8, ny=6)
        with counters_scope(ca):
            aa.iteration()
        bytes_per_cell_h = sum(r.bytes_moved for r in ch.loops.values()) / mh.fine.cells.size
        bytes_per_cell_a = sum(r.bytes_moved for r in ca.loops.values()) / aa.mesh.cells.size
        assert bytes_per_cell_h > 2 * bytes_per_cell_a


class TestDistributed:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_matches_serial(self, nranks):
        ms = generate_hydra_mesh(8, 6, jitter=0.1)
        serial = HydraApp(ms)
        rms_s = serial.run(2)

        mp = generate_hydra_mesh(8, 6, jitter=0.1)
        app = HydraApp(mp)
        pm = app.build_partitioned(nranks, "rcb")

        def main(comm):
            r = app.run_distributed(comm, pm, 2)
            return r, pm.local(comm.rank).gather_dat(comm, mp.q)

        r_d, q_d = run_spmd(nranks, main)[0]
        assert r_d == pytest.approx(rms_s, rel=1e-12)
        np.testing.assert_allclose(q_d, ms.q.data, atol=1e-12)


class TestOptimisations:
    def test_renumbering_preserves_results(self):
        a = HydraApp(generate_hydra_mesh(8, 6, jitter=0.1))
        r1 = a.run(2)
        b = HydraApp(generate_hydra_mesh(8, 6, jitter=0.1))
        b.renumber()
        r2 = b.run(2)
        assert r1 == pytest.approx(r2, rel=1e-12)

    def test_renumbering_improves_edge_locality(self):
        from repro.op2.renumber import locality_score

        # jittered generation order is already fairly local; scramble it
        m = generate_hydra_mesh(12, 8)
        rng = np.random.default_rng(0)
        perm = rng.permutation(m.fine.cells.size)
        from repro.op2.renumber import apply_permutation

        cell_dats = [d for d in m.all_dats if d.set is m.fine.cells]
        cell_dats += [m.fine.q, m.fine.qold, m.fine.adt, m.fine.res]
        apply_permutation(perm, cell_dats, [m.fine.edge2cell, m.fine.bedge2cell])
        m.fine2coarse.values[:] = m.fine2coarse.values[perm]
        m.fine.cell2node.values[:] = m.fine.cell2node.values[perm]

        before = locality_score(m.fine.edge2cell)
        app = HydraApp(m)
        app.renumber()
        assert locality_score(m.fine.edge2cell) < before
