"""True multi-process SPMD execution (repro.mp).

The deterministic in-process executor is the verification oracle: the
cross-executor differential battery asserts **bitwise** identity between
``run_spmd`` (threads) and ``run_spmd_mp`` (forked worker processes) on
airfoil, cloverleaf, sod and multiblock at ranks 1, 4 and 8.  Resilience
is tested against *real* deaths: a live worker is SIGKILLed mid-run and
the checkpoint-restart driver must recover to a bitwise-identical final
state; a worker killed mid-halo-exchange must never leave a peer blocked
past the deadlock timeout.  Shared-memory Dat storage gets a hypothesis
round-trip property over the dtype x shape x halo-depth grid, and the
native .so cache is raced by concurrent compiling processes.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.common.config import swap
from repro.common.counters import PerfCounters
from repro.common.errors import (
    APIError,
    RankFailedError,
    ReproError,
    ResilienceError,
    WorkerDiedError,
)
from repro.common.profiling import counters_scope
from repro.common.report import timing_report
from repro.mp import (
    DatArena,
    FailedFlags,
    MpWorld,
    restore,
    run_resilient_spmd_mp,
    run_spmd_mp,
    snapshot,
)
from repro.native import cache as ncache
from repro.resilience.jobs import AirfoilJob
from repro.simmpi import run_spmd
from repro.simmpi.comm import ANY, DeadlockError
from repro.verify import diff_backends

requires_cc = pytest.mark.skipif(
    ncache.find_compiler() is None, reason="no C compiler available"
)


def _clear_plans():
    from repro.op2.execplan import clear_plan_cache as clear_op2
    from repro.ops.execplan import clear_plan_cache as clear_ops

    clear_op2()
    clear_ops()


def _mp_vs_inproc(run_fn):
    """Diff one SPMD program across executors — bitwise, no tolerance.

    ``run_fn(spmd)`` must execute the program through the given
    ``run_spmd``-shaped callable and return the dict of result arrays.
    """

    def run(mode):
        _clear_plans()
        return run_fn(run_spmd_mp if mode == "mp" else run_spmd)

    return diff_backends(run, ["inproc", "mp"], reference="inproc", trace=False)


# ---------------------------------------------------------------------------
# transport semantics: p2p, collectives, failure behaviour
# ---------------------------------------------------------------------------


class TestTransport:
    def test_collectives_parity(self):
        """Every collective, both executors, same bits."""

        def body(comm):
            rng = np.random.default_rng(100 + comm.rank)
            mine = rng.random(5)
            out = {}
            out["bcast"] = comm.bcast(mine if comm.rank == 0 else None, root=0)
            out["gather"] = comm.gather(mine, root=0)
            out["allgather"] = comm.allgather(mine)
            out["scatter"] = comm.scatter(
                [mine + r for r in range(comm.size)] if comm.rank == 0 else None,
                root=0,
            )
            out["reduce"] = comm.reduce(mine, op="sum", root=0)
            out["allreduce"] = comm.allreduce(mine, op="min")
            out["alltoall"] = comm.alltoall([mine * r for r in range(comm.size)])
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            out["sendrecv"] = comm.sendrecv(mine, right, left, tag=4)
            if comm.size > 1:
                out["exchange"] = comm.neighbor_exchange({right: mine, left: -mine})
            comm.barrier()
            return out

        def deep_equal(a, b):
            if isinstance(a, dict):
                return isinstance(b, dict) and set(a) == set(b) and all(
                    deep_equal(a[k], b[k]) for k in a
                )
            if isinstance(a, (list, tuple)):
                return (
                    isinstance(b, (list, tuple))
                    and len(a) == len(b)
                    and all(deep_equal(x, y) for x, y in zip(a, b))
                )
            return bool(np.array_equal(np.asarray(a), np.asarray(b)))

        for nranks in (1, 3, 4):
            got_mp = run_spmd_mp(nranks, body)
            got_th = run_spmd(nranks, body)
            for rank in range(nranks):
                for key, val in got_th[rank].items():
                    assert deep_equal(got_mp[rank][key], val), (
                        f"rank {rank} {key} diverged across executors"
                    )

    def test_any_source_and_tags(self):
        def body(comm):
            if comm.rank == 0:
                first = comm.recv(ANY, tag=9)
                second = comm.recv(ANY, tag=9)
                late = comm.recv(2, tag=3)  # buffered earlier, matched by tag
                return sorted([float(first), float(second)]) + [float(late)]
            if comm.rank == 2:
                comm.send(np.float64(comm.rank), 0, tag=3)
            comm.send(np.float64(comm.rank), 0, tag=9)
            return None

        out = run_spmd_mp(3, body)
        assert out[0] == [1.0, 2.0, 2.0]

    def test_probe(self):
        def body(comm):
            if comm.rank == 1:
                comm.send(b"x", 0, tag=7)
                comm.barrier()
                return None
            assert not comm.probe(1, tag=8)
            comm.barrier()  # rank 1's send happened before its barrier
            deadline = time.monotonic() + 5.0
            while not comm.probe(1, tag=7):
                assert time.monotonic() < deadline
            return comm.recv(1, tag=7)

        assert run_spmd_mp(2, body)[0] == b"x"

    def test_deadlock_timeout(self):
        def body(comm):
            if comm.rank == 0:
                comm.recv(1, tag=5)  # never sent
            else:
                time.sleep(2.0)

        with swap(deadlock_timeout=0.4):
            t0 = time.monotonic()
            with pytest.raises(RuntimeError) as err:
                run_spmd_mp(2, body)
            assert time.monotonic() - t0 < 5.0
        assert isinstance(err.value.__cause__, DeadlockError)

    def test_organic_error_is_root_cause(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("organic bug")
            comm.recv(1, tag=2)

        world = MpWorld(3)
        with swap(deadlock_timeout=20.0):
            with pytest.raises(RuntimeError, match="rank 1 failed") as err:
                run_spmd_mp(3, body, world=world)
        assert isinstance(err.value.__cause__, ValueError)
        assert 1 in world.failed_ranks

    def test_send_to_failed_rank_raises(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("down")
            time.sleep(0.3)
            with pytest.raises(RankFailedError):
                for _ in range(50):
                    comm.send(np.zeros(4), 1, tag=6)
                    time.sleep(0.05)
            raise ValueError("peer observed the death")  # proves we got here

        with swap(deadlock_timeout=20.0):
            with pytest.raises(RuntimeError, match="rank"):
                run_spmd_mp(2, body)

    def test_rank_args_and_world_reuse(self):
        def body(comm, base, extra):
            return base + extra + comm.rank

        out = run_spmd_mp(2, body, 10, rank_args=[(100,), (200,)])
        assert out == [110, 211]
        world = MpWorld(2)
        run_spmd_mp(2, body, 0, world=world, rank_args=[(0,), (0,)])
        with pytest.raises(ReproError, match="single-use"):
            run_spmd_mp(2, body, 0, world=world, rank_args=[(0,), (0,)])

    def test_unpicklable_result_reports_cleanly(self):
        def body(comm):
            return lambda: None  # locals don't pickle

        with pytest.raises(RuntimeError, match="not picklable"):
            run_spmd_mp(1, body)

    def test_failed_flags_set_protocol(self):
        flags = FailedFlags(4)
        assert not flags and len(flags) == 0 and 2 not in flags
        flags.add(2)
        assert flags and 2 in flags and list(flags) == [2]
        assert sorted(flags) == [2]
        assert "x" not in flags and -1 not in flags and 99 not in flags


# ---------------------------------------------------------------------------
# cross-executor differential battery: ranks 1, 4, 8 on all four apps
# ---------------------------------------------------------------------------

RANKS = [1, 4, 8]


class TestDiffBattery:
    @pytest.mark.parametrize("nranks", RANKS)
    def test_airfoil(self, nranks):
        from repro.apps.airfoil.app import AirfoilApp
        from repro.apps.airfoil.mesh import generate_mesh

        def run(spmd):
            mesh = generate_mesh(12, 8, jitter=0.1)
            app = AirfoilApp(mesh)
            pm = app.build_partitioned(nranks, "block")

            def main(comm):
                rms = app.run_distributed(comm, pm, 2)
                return rms, pm.local(comm.rank).gather_dat(comm, mesh.q)

            rms, q = spmd(nranks, main)[0]
            return {"q": q, "rms": np.asarray([rms])}

        _mp_vs_inproc(run).assert_agree()

    @pytest.mark.parametrize("nranks", RANKS)
    def test_cloverleaf(self, nranks):
        from repro.apps.cloverleaf import clover_bm_state
        from repro.apps.cloverleaf.app import DistributedCloverLeafApp
        from repro.ops.decomp import DecomposedBlock

        def run(spmd):
            gstate = clover_bm_state(16, 12)
            dec = DecomposedBlock(nranks, gstate.block, gstate.all_dats,
                                  global_size=(16, 12))

            def main(comm):
                app = DistributedCloverLeafApp(comm, dec, gstate)
                s = app.run(2)
                return s, app.gather_field("density0")

            s, dens = spmd(nranks, main)[0]
            return {"density": dens, **{k: np.asarray([v]) for k, v in s.items()}}

        _mp_vs_inproc(run).assert_agree()

    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("app", ["sod", "multiblock"])
    def test_decomposed_stencil(self, app, nranks):
        """sod/multiblock have no distributed driver; their legs run an
        app-shaped stencil+reduction chain through DecomposedBlock (the
        same shape the native battery uses)."""
        if app == "sod":
            shape, ranges = (64,), [(1, 63)]

            def kern(u, v, t):
                v[0] = 0.25 * (u[-1] + u[1]) + 0.5 * u[0]
                t.min(v[0])

            sten = ops.Stencil(1, [(0,), (-1,), (1,)], "S1D_3PT_T")
        else:
            shape, ranges = (16, 12), [(1, 15), (1, 11)]

            def kern(u, v, t):
                v[0, 0] = 0.25 * (u[1, 0] + u[-1, 0] + u[0, 1] + u[0, -1])
                t.min(v[0, 0])

            sten = ops.S2D_5PT

        def run(spmd):
            from repro.ops.decomp import DecomposedBlock

            blk = ops.Block(len(shape))
            u = ops.Dat(blk, shape, halo_depth=2, name="u")
            v = ops.Dat(blk, shape, halo_depth=2, name="v")
            u.interior[...] = np.random.default_rng(7).random(shape)
            dec = DecomposedBlock(nranks, blk, [u, v])

            def main(comm):
                lb = dec.local(comm.rank)
                t = ops.Reduction("min")
                for _ in range(3):
                    lb.par_loop(comm, kern, ranges, u(ops.READ, sten),
                                v(ops.WRITE), t)
                    lb.par_loop(comm, kern, ranges, v(ops.READ, sten),
                                u(ops.WRITE), t)
                return t.value, lb.gather(comm, u)

            t, gathered = spmd(nranks, main)[0]
            return {"u": gathered, "t": np.asarray([t])}

        _mp_vs_inproc(run).assert_agree()

    def test_lazy_tiling_inside_workers(self):
        """Queued lazy loops flush at rank return inside each worker and the
        result stays bitwise-identical to the eager mp run."""
        from repro.ops.decomp import DecomposedBlock

        def smooth(a, b):
            b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])

        def run(lazy_on):
            _clear_plans()
            blk = ops.Block(2)
            u = ops.Dat(blk, (16, 12), halo_depth=2, name="u")
            v = ops.Dat(blk, (16, 12), halo_depth=2, name="v")
            u.interior[...] = np.random.default_rng(3).random((16, 12))
            dec = DecomposedBlock(4, blk, [u, v])

            def main(comm):
                lb = dec.local(comm.rank)
                with swap(lazy=lazy_on):
                    for _ in range(2):
                        lb.par_loop(comm, smooth, [(1, 15), (1, 11)],
                                    u(ops.READ, ops.S2D_5PT), v(ops.WRITE))
                        lb.par_loop(comm, smooth, [(1, 15), (1, 11)],
                                    v(ops.READ, ops.S2D_5PT), u(ops.WRITE))
                return lb.gather(comm, u)

            return run_spmd_mp(4, main)[0]

        np.testing.assert_array_equal(run(False), run(True))


# ---------------------------------------------------------------------------
# shared-memory Dat storage
# ---------------------------------------------------------------------------


class TestSharedMemory:
    def test_worker_writes_visible_to_parent(self):
        blk = ops.Block(1)
        d = ops.Dat(blk, 8, halo_depth=1, name="d")

        def writer(comm, dat):
            dat.interior[...] = 7.0
            return float(dat.interior.sum())

        # without sharing: fork isolates the worker's writes
        run_spmd_mp(1, writer, d)
        assert float(d.interior.sum()) == 0.0
        # with sharing: the parent sees them, and keeps them after release
        run_spmd_mp(1, writer, d, shared_dats=[d])
        assert float(d.interior.sum()) == 7.0 * 8

    def test_arena_release_is_idempotent_and_copies_back(self):
        blk = ops.Block(2)
        d = ops.Dat(blk, (4, 3), halo_depth=2, name="d")
        d.interior[...] = 1.5
        arena = DatArena()
        view = arena.share(d)
        assert arena.nbytes >= view.nbytes and len(arena) == 1
        view[...] = 2.5
        arena.release()
        arena.release()
        assert np.all(d.data == 2.5)
        d.interior[...] = 9.0  # storage is private again: plain ndarray ops

    def test_op2_soa_refused(self):
        from repro.op2.dat import Dat as Op2Dat
        from repro.op2.set import Set

        s = Set(6, name="cells")
        d = Op2Dat(s, 2, name="x")
        d.convert_to_soa()
        with pytest.raises(APIError, match="SoA"):
            DatArena().share(d)

    def test_op2_dat_shareable(self):
        from repro.op2.dat import Dat as Op2Dat
        from repro.op2.set import Set

        s = Set(5, name="cells")
        d = Op2Dat(s, 3, name="x")

        def writer(comm, dat):
            dat.data[...] = 4.25
            return None

        run_spmd_mp(1, writer, d, shared_dats=[d])
        assert np.all(d.data == 4.25)

    @settings(max_examples=25, deadline=None)
    @given(
        dtype=st.sampled_from([np.float64, np.float32, np.int64]),
        dims=st.lists(st.integers(1, 6), min_size=1, max_size=3),
        halo=st.integers(0, 2),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_snapshot_restore_roundtrip(self, dtype, dims, halo, seed):
        """Share -> mutate -> snapshot -> clobber -> restore is the identity,
        across the dtype x shape x halo-depth grid, and release preserves
        the last shared values on private storage."""
        blk = ops.Block(len(dims))
        d = ops.Dat(blk, tuple(dims), halo_depth=halo, dtype=dtype, name="h")
        rng = np.random.default_rng(seed)
        first = (rng.random(d.data.shape) * 100).astype(dtype)
        second = (rng.random(d.data.shape) * 100).astype(dtype)
        with DatArena() as arena:
            arena.share(d)
            d.data[...] = first
            snap = snapshot(d)
            assert snap.base is None  # a private copy, not a view
            d.data[...] = second
            restore(d, snap)
            np.testing.assert_array_equal(d.data, first)
            d.data[...] = second
        np.testing.assert_array_equal(d.data, second)  # survived release

    def test_adopt_storage_validates(self):
        blk = ops.Block(1)
        d = ops.Dat(blk, 4, halo_depth=1, name="d")
        with pytest.raises(APIError, match="adopted storage"):
            d.adopt_storage(np.zeros(3))
        with pytest.raises(APIError, match="adopted storage"):
            d.adopt_storage(np.zeros(6, dtype=np.float32))


# ---------------------------------------------------------------------------
# cross-process counters and telemetry
# ---------------------------------------------------------------------------


class TestCountersAcrossProcesses:
    def test_per_rank_counters_come_home(self):
        def body(comm):
            comm.send(np.zeros(8), (comm.rank + 1) % comm.size, tag=1)
            comm.recv((comm.rank - 1) % comm.size, tag=1)
            return None

        world = MpWorld(3)
        run_spmd_mp(3, body, world=world)
        for rank in range(3):
            assert world.counters[rank].messages_sent >= 1
        assert world.total_counters().messages_sent >= 3

    def test_timing_report_covers_worker_loops(self):
        """Loop records from every worker land in one timing_report."""
        from repro.ops.decomp import DecomposedBlock

        def kern(a, b):
            b[0] = a[0] + 1.0

        blk = ops.Block(1)
        u = ops.Dat(blk, 32, halo_depth=1, name="u")
        v = ops.Dat(blk, 32, halo_depth=1, name="v")
        dec = DecomposedBlock(2, blk, [u, v])

        def main(comm):
            lb = dec.local(comm.rank)
            lb.par_loop(comm, kern, [(0, 32)], u(ops.READ), v(ops.WRITE))
            return None

        mine = PerfCounters()
        with counters_scope(mine):
            run_spmd_mp(2, main)  # auto-world folds into the active scope
            report = timing_report(mine)
        assert mine.loops, "worker loop records did not reach the parent"
        assert "kern" in report
        total = sum(rec.invocations for rec in mine.loops.values())
        assert total >= 2  # one loop per rank, merged

    def test_explicit_world_does_not_double_count(self):
        def body(comm):
            comm.send(b"m", (comm.rank + 1) % comm.size, tag=1)
            comm.recv((comm.rank - 1) % comm.size, tag=1)

        world = MpWorld(2)
        mine = PerfCounters()
        with counters_scope(mine):
            run_spmd_mp(2, body, world=world)
        assert mine.messages_sent == 0  # explicit world: caller owns the merge
        assert world.total_counters().messages_sent == 2


class TestTelemetryAcrossProcesses:
    def test_per_worker_trace_export_and_merge(self, tmp_path):
        from repro.telemetry import tracer as _trace
        from repro.telemetry.report import (
            load_traces,
            merged_chrome_trace,
            render_report,
        )

        def body(comm):
            comm.barrier()
            comm.send(np.ones(4), (comm.rank + 1) % comm.size, tag=2)
            comm.recv((comm.rank - 1) % comm.size, tag=2)
            return os.getpid()

        tdir = tmp_path / "traces"
        pids = run_spmd_mp(2, body, trace_dir=str(tdir))
        files = sorted(glob.glob(str(tdir / "trace-rank*.jsonl")))
        assert len(files) == 2
        records = load_traces(files)
        assert {r["rank"] for r in records} == {0, 1}
        assert {r["pid"] for r in records} == set(pids)
        assert all(r["pid"] != os.getpid() for r in records)

        merged = merged_chrome_trace(records)
        from repro.telemetry.export import validate_chrome_trace

        validate_chrome_trace(merged)
        evs = [e for e in merged["traceEvents"] if e["ph"] != "M"]
        assert {e["pid"] for e in evs} == set(pids)  # pid = worker process
        assert {e["tid"] for e in evs} == {0, 1}  # tid = rank
        assert "per-rank timeline" in render_report(records)
        assert _trace.ACTIVE is None  # workers' tracers died with them

    def test_report_cli_glob_and_merge_out(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as telemetry_main

        def body(comm):
            comm.barrier()
            return None

        tdir = tmp_path / "t"
        run_spmd_mp(2, body, trace_dir=str(tdir))
        out = tmp_path / "merged.json"
        rc = telemetry_main([
            "report", str(tdir / "trace-rank*.jsonl"), "--merge-out", str(out),
        ])
        assert rc == 0
        assert "per-rank timeline" in capsys.readouterr().out
        obj = json.loads(out.read_text())
        assert any(ev.get("ph") == "M" for ev in obj["traceEvents"])

    def test_trace_dir_config_default(self, tmp_path):
        def body(comm):
            comm.barrier()
            return None

        with swap(mp_trace_dir=str(tmp_path / "cfg")):
            run_spmd_mp(2, body)
        assert len(glob.glob(str(tmp_path / "cfg" / "trace-rank*.jsonl"))) == 2


# ---------------------------------------------------------------------------
# real failures: SIGKILL detection, prompt unblocking, recovery
# ---------------------------------------------------------------------------


def _kill_after(pids, rank, delay):
    def go():
        time.sleep(delay)
        try:
            os.kill(pids[rank], signal.SIGKILL)
        except ProcessLookupError:
            pass

    threading.Thread(target=go, daemon=True).start()


class TestRealFailures:
    def test_sigkill_surfaces_as_worker_died(self):
        def body(comm):
            if comm.rank == 1:
                time.sleep(30)
            comm.barrier()

        world = MpWorld(2)
        with swap(deadlock_timeout=20.0):
            with pytest.raises(RuntimeError, match="rank 1") as err:
                run_spmd_mp(2, body, world=world,
                            on_start=lambda pids: _kill_after(pids, 1, 0.2))
        cause = err.value.__cause__
        assert isinstance(cause, WorkerDiedError)
        assert cause.rank == 1
        assert cause.exitcode == -signal.SIGKILL
        # rank 0 may also be flagged: its secondary RankFailedError marks it,
        # exactly as the threaded executor marks every errored rank
        assert 1 in world.failed_ranks

    def test_kill_mid_halo_exchange_releases_peer_promptly(self):
        """The satellite regression: a worker killed mid-exchange must never
        leave a peer blocked out to the deadlock timeout — the failure flags
        surface within a poll interval."""

        def body(comm):
            if comm.rank == 1:
                # enter the exchange: send, then block in recv, then die
                comm.send(np.zeros(4), 0, tag=5)
                time.sleep(30)
            # rank 0 blocks receiving the *second* message, which never comes
            comm.recv(1, tag=5)
            comm.recv(1, tag=5)

        with swap(deadlock_timeout=30.0):
            t0 = time.monotonic()
            with pytest.raises(RuntimeError) as err:
                run_spmd_mp(2, body,
                            on_start=lambda pids: _kill_after(pids, 1, 0.3))
            elapsed = time.monotonic() - t0
        assert isinstance(err.value.__cause__, WorkerDiedError)
        assert elapsed < 10.0, (
            f"peer stayed blocked {elapsed:.1f}s — failure not surfaced promptly"
        )

    def test_blocked_sender_to_dead_rank_is_released(self):
        """A sender blocked on the victim's full pipe must be drained free."""
        big = np.zeros(1 << 16)  # larger than the OS pipe buffer

        def body(comm):
            if comm.rank == 1:
                time.sleep(30)  # never receives
                return None
            sent = 0
            try:
                for _ in range(8):
                    comm.send(big, 1, tag=3)  # blocks once the pipe fills
                    sent += 1
            except RankFailedError:
                return sent
            return sent

        with swap(deadlock_timeout=30.0):
            t0 = time.monotonic()
            with pytest.raises(RuntimeError):
                run_spmd_mp(2, body,
                            on_start=lambda pids: _kill_after(pids, 1, 0.5))
            assert time.monotonic() - t0 < 10.0


class TestKillAndRecover:
    def test_sigkill_recovery_is_bitwise_identical(self, tmp_path):
        """The acceptance criterion: SIGKILL a live worker mid-run; the mp
        resilient driver restarts from the latest common checkpoint round
        and finishes bitwise-identical to a fault-free run."""
        job = AirfoilJob(2, 12, nx=12, ny=8)

        reference = run_resilient_spmd_mp(
            2, job, ckpt_dir=tmp_path / "ref", frequency=10
        )
        assert reference.restarts == 0

        # cross-executor: the threaded resilient driver agrees bitwise
        from repro.resilience.driver import run_resilient_spmd

        threaded = run_resilient_spmd(
            2, job, ckpt_dir=tmp_path / "th", frequency=10, plan=None
        )
        for rank in range(2):
            assert threaded.results[rank][0] == reference.results[rank][0]
            np.testing.assert_array_equal(
                threaded.results[rank][1], reference.results[rank][1]
            )

        ck = tmp_path / "kill"
        killed = threading.Event()

        def on_attempt(attempt, pids):
            if attempt != 1:
                return

            def watch():
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if glob.glob(str(ck / "ckpt-r001-n*.npz")):
                        try:
                            os.kill(pids[1], signal.SIGKILL)
                            killed.set()
                        except ProcessLookupError:
                            pass
                        return
                    time.sleep(0.02)

            threading.Thread(target=watch, daemon=True).start()

        result = run_resilient_spmd_mp(
            2, job, ckpt_dir=ck, frequency=10, on_attempt_start=on_attempt
        )
        assert killed.is_set(), "the kill never fired; the test is vacuous"
        assert result.restarts >= 1
        assert result.recovered_rounds and result.recovered_rounds[0] >= 0
        assert result.counters.restarts == result.restarts
        for rank in range(2):
            rms_ref, q_ref = reference.results[rank]
            rms_got, q_got = result.results[rank]
            assert rms_ref == rms_got, "recovered rms diverged"
            np.testing.assert_array_equal(q_ref, q_got)

    def test_max_restarts_exhausted(self, tmp_path):
        """Killing every attempt without checkpoints exhausts the budget."""
        job = AirfoilJob(2, 8, nx=10, ny=8)

        def murder_every_attempt(attempt, pids):
            _kill_after(pids, 1, 0.0)  # before the tiny job can finish

        with swap(deadlock_timeout=20.0):
            with pytest.raises(ResilienceError, match="giving up"):
                run_resilient_spmd_mp(
                    2, job, ckpt_dir=tmp_path / "doom", frequency=None,
                    max_restarts=1, on_attempt_start=murder_every_attempt,
                )


# ---------------------------------------------------------------------------
# native cache under concurrent compilers
# ---------------------------------------------------------------------------

_RACE_SRC = """
#include <math.h>
void kernel_run(double **p, const long long **m, const long long *n,
                double *red, const double *cv) {
    for (long long i = 0; i < n[0]; ++i) p[0][i] = sqrt(p[1][i]) + %d.0;
}
"""


class TestNativeCacheConcurrency:
    @requires_cc
    def test_processes_racing_same_kernel_all_succeed(self, tmp_path):
        """N processes compiling one kernel: every load succeeds via the
        atomic-rename publish and the cache ends with exactly one entry."""
        src = _RACE_SRC % 1

        def body(comm):
            comm.barrier()  # line everyone up at the compile
            kern, was_cached = ncache.load_kernel(src)
            assert os.path.exists(kern.path)
            return was_cached

        with swap(native_cache_dir=str(tmp_path / "race")):
            ncache.clear_memory_cache()
            results = run_spmd_mp(6, body)
            d = ncache.cache_dir()
        assert all(isinstance(r, bool) for r in results)
        sos = [f for f in os.listdir(d) if f.endswith(".so")]
        cs = [f for f in os.listdir(d) if f.endswith(".c")]
        assert len(sos) == 1 and len(cs) == 1, (sos, cs)
        assert not any(f.startswith("tmp") for f in os.listdir(d)), (
            "compile temporaries leaked into the cache dir"
        )

    @requires_cc
    def test_maintenance_ignores_inflight_temporaries(self, tmp_path):
        """cache_info/clear/prune must not count or unlink another process's
        in-flight mkstemp temporaries (the window this PR closes)."""
        with swap(native_cache_dir=str(tmp_path / "maint")):
            ncache.clear_memory_cache()
            ncache.load_kernel(_RACE_SRC % 2)
            d = ncache.cache_dir()
            # simulate a concurrent compiler mid-flight
            fresh_c = os.path.join(d, "tmpabc123.c")
            fresh_so = os.path.join(d, "tmpabc123.so")
            for p in (fresh_c, fresh_so):
                with open(p, "w") as fh:
                    fh.write("x")
            info = ncache.cache_info()
            assert info["objects"] == 1 and info["sources"] == 1
            assert ncache.cache_prune(max_age_days=30.0) == 0
            removed = ncache.cache_clear()
            assert removed == 2  # the published pair only
            assert os.path.exists(fresh_c) and os.path.exists(fresh_so)
            # crashed-compile leftovers old enough are garbage-collected
            old = time.time() - 7200
            os.utime(fresh_c, (old, old))
            os.utime(fresh_so, (old, old))
            assert ncache.cache_clear() == 2
            assert not os.path.exists(fresh_c)


# ---------------------------------------------------------------------------
# serve: optional process-pool executor
# ---------------------------------------------------------------------------


class TestServeMpExecutor:
    def test_mp_executor_matches_thread_executor(self, tmp_path):
        import asyncio

        from repro.serve import JobSpec, ServeService

        async def one(executor):
            service = ServeService(
                workers=1, ckpt_dir=tmp_path / f"ckpt-{executor}",
                executor=executor,
            )
            async with service:
                spec = JobSpec(
                    iterations=4, params={"nx": 8, "ny": 6},
                    preemptible=False, nranks=2,
                )
                jid = await service.submit(spec)
                return await service.result(jid, timeout=120)

        r_thread = asyncio.run(one("thread"))
        r_mp = asyncio.run(one("mp"))
        assert len(r_mp) == len(r_thread) == 2
        for a, b in zip(r_mp, r_thread):
            np.testing.assert_array_equal(np.asarray(a[0]), np.asarray(b[0]))
            np.testing.assert_array_equal(a[1], b[1])

    def test_bad_executor_rejected(self, tmp_path):
        from repro.common.errors import ServeError
        from repro.serve.queue import FairShareQueue
        from repro.serve.scheduler import Scheduler
        from repro.serve.session import SessionCache

        with pytest.raises(ServeError, match="unknown executor"):
            Scheduler(FairShareQueue(), SessionCache(),
                      ckpt_dir=tmp_path, executor="fibers")
