"""Machine catalog and analytic models (roofline / GPU / network)."""

import pytest

from repro.machine import (
    CATALOG,
    GpuExecutionModel,
    LoopTraffic,
    NetworkModel,
    RooflineModel,
    XEON_E5_2697V2,
    XEON_PHI_5110P,
    NVIDIA_K40,
    get_machine,
)
from repro.machine.catalog import GEMINI, QDR_IB
from repro.machine.gpu import GpuLoopShape


def direct_loop(gb: float = 1.0) -> LoopTraffic:
    return LoopTraffic("update", bytes_direct=gb * 1e9, bytes_indirect=0.0, flops=1e7)


def indirect_loop(gb: float = 1.0) -> LoopTraffic:
    return LoopTraffic("res_calc", bytes_direct=0.0, bytes_indirect=gb * 1e9, flops=1e7)


class TestCatalog:
    def test_lookup(self):
        assert get_machine("NVIDIA K40").is_gpu

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_machine("Cerebras WSE")

    def test_all_entries_have_positive_bandwidth(self):
        for spec in CATALOG.values():
            assert spec.stream_bw_gbs > 0
            assert spec.peak_gflops >= spec.scalar_gflops


class TestRoofline:
    def test_direct_loop_near_stream_bandwidth(self):
        """Table I: update/save_soln run near the machine's peak bandwidth."""
        model = RooflineModel(XEON_E5_2697V2)
        bw = model.achieved_bandwidth_gbs(direct_loop())
        assert bw == pytest.approx(XEON_E5_2697V2.stream_bw_gbs, rel=0.05)

    def test_indirect_loop_degrades_bandwidth(self):
        model = RooflineModel(XEON_E5_2697V2)
        assert model.achieved_bandwidth_gbs(indirect_loop()) < model.achieved_bandwidth_gbs(
            direct_loop()
        )

    def test_phi_collapses_on_indirect(self):
        """Table I's key shape: res_calc on the Phi falls to ~25 GB/s class."""
        phi = RooflineModel(XEON_PHI_5110P)
        bw = phi.achieved_bandwidth_gbs(indirect_loop())
        assert bw < 0.35 * XEON_PHI_5110P.stream_bw_gbs

    def test_unvectorised_compute_bound_loop_slower(self):
        heavy = LoopTraffic("adt", bytes_direct=1e8, bytes_indirect=0, flops=5e10)
        vec = RooflineModel(XEON_E5_2697V2, vectorised=True).loop_seconds(heavy)
        scal = RooflineModel(XEON_E5_2697V2, vectorised=False).loop_seconds(heavy)
        assert scal > vec

    def test_vectorisation_irrelevant_for_bandwidth_bound(self):
        vec = RooflineModel(XEON_E5_2697V2, vectorised=True).loop_seconds(direct_loop())
        scal = RooflineModel(XEON_E5_2697V2, vectorised=False).loop_seconds(direct_loop())
        assert vec == pytest.approx(scal, rel=0.01)

    def test_launch_overhead_added(self):
        tiny = LoopTraffic("t", bytes_direct=8.0, bytes_indirect=0, flops=1)
        model = RooflineModel(NVIDIA_K40)
        assert model.loop_seconds(tiny) >= NVIDIA_K40.launch_overhead_us * 1e-6

    def test_chain_is_sum(self):
        model = RooflineModel(XEON_E5_2697V2)
        loops = [direct_loop(), indirect_loop()]
        assert model.chain_seconds(loops) == pytest.approx(
            sum(model.loop_total_seconds(l) for l in loops)
        )

    def test_divergence_slows_compute(self):
        base = LoopTraffic("k", bytes_direct=1e6, bytes_indirect=0, flops=1e10)
        div = LoopTraffic("k", bytes_direct=1e6, bytes_indirect=0, flops=1e10, divergence=1.0)
        m = RooflineModel(NVIDIA_K40)
        assert m.compute_seconds(div) > m.compute_seconds(base)


class TestGpuModel:
    def test_rejects_cpu(self):
        with pytest.raises(ValueError):
            GpuExecutionModel(XEON_E5_2697V2)

    def test_underfilled_device_is_slower_per_element(self):
        """Fig 4/6 shape: GPUs strong-scale badly because small per-device
        workloads cannot fill the device."""
        m = GpuExecutionModel(NVIDIA_K40)
        big = GpuLoopShape(elements=10_000_000)
        small = GpuLoopShape(elements=5_000)
        t_big = m.loop_seconds_shaped(direct_loop(), big)
        t_small = m.loop_seconds_shaped(direct_loop(0.0005), small)
        # per-element time must be much worse when underfilled
        assert (t_small / 5_000) > (t_big / 10_000_000)

    def test_high_state_degrades_occupancy(self):
        """The Hydra effect: more bytes per point -> lower occupancy."""
        m = GpuExecutionModel(NVIDIA_K40)
        assert m.occupancy(GpuLoopShape(state_bytes=600)) < 1.0
        assert m.occupancy(GpuLoopShape(state_bytes=64)) == 1.0

    def test_colours_serialise(self):
        m = GpuExecutionModel(NVIDIA_K40)
        assert m.colour_penalty(GpuLoopShape(colours=4)) > m.colour_penalty(
            GpuLoopShape(colours=1)
        )


class TestNetwork:
    def test_message_time_latency_plus_bandwidth(self):
        net = NetworkModel(GEMINI)
        t = net.message_seconds(5e9)  # 5 GB at 5 GB/s
        assert t == pytest.approx(1.0, rel=0.01)

    def test_exchange_scales_with_messages(self):
        net = NetworkModel(GEMINI)
        assert net.exchange_seconds(8, 1000) > net.exchange_seconds(2, 1000)

    def test_allreduce_grows_logarithmically(self):
        net = NetworkModel(GEMINI)
        t16 = net.allreduce_seconds(16)
        t256 = net.allreduce_seconds(256)
        assert t256 == pytest.approx(2.0 * t16, rel=0.01)

    def test_gpu_staging_penalty(self):
        cpu = NetworkModel(QDR_IB, gpu_buffers=False)
        gpu = NetworkModel(QDR_IB, gpu_buffers=True)
        assert gpu.message_seconds(1000) > cpu.message_seconds(1000)

    def test_single_rank_no_reduction_cost(self):
        assert NetworkModel(GEMINI).allreduce_seconds(1) == 0.0
