"""Colouring race detector: plans must serialise conflicting updates.

``check_plan`` statically replays an execution plan and asserts no two
same-coloured blocks (level 1) or same-elem-coloured elements within a
block (level 2) write a common indirect location.  ``torn_update_check``
proves it dynamically: re-executing with shuffled within-colour order and
non-atomic scatters must not change the result.
"""

import copy

import numpy as np
import pytest

from repro import op2
from repro.common.errors import RaceViolation
from repro.op2.plan import build_plan
from repro.verify import check_plan, race_targets, torn_update_check


def flux_setup(n_edges=200, n_cells=60, seed=0, block_size=16):
    rng = np.random.default_rng(seed)
    edges = op2.Set(n_edges, "edges")
    cells = op2.Set(n_cells, "cells")
    e2c = op2.Map(edges, cells, 2,
                  rng.integers(0, n_cells, size=(n_edges, 2)), name="e2c")
    w = op2.Dat(edges, 1, data=rng.random((n_edges, 1)), name="w")
    res = op2.Dat(cells, 1, data=np.zeros((n_cells, 1)), name="res")

    def flux(wv, r0, r1):
        r0[0] += wv[0]
        r1[0] -= wv[0]

    def flux_vec(wv, r0, r1):
        r0[:] += wv
        r1[:] -= wv

    k = op2.Kernel(flux, name="flux", vec_func=flux_vec)
    args = [w(op2.READ), res(op2.INC, e2c, 0), res(op2.INC, e2c, 1)]
    plan = build_plan(edges, args, block_size=block_size, n_elements=n_edges)
    return k, edges, args, plan


def corrupt(plan, *, blocks=False, elems=False):
    bad = copy.copy(plan)
    if blocks:
        bad.block_colour = np.zeros_like(plan.block_colour)
    if elems:
        bad.elem_colour = np.zeros_like(plan.elem_colour)
    return bad


class TestRaceTargets:
    def test_only_indirect_writes_count(self):
        k, edges, args, plan = flux_setup()
        tgts = race_targets(args, edges.size)
        assert tgts.shape == (edges.size, 2)  # the two INC slots

    def test_read_only_loop_has_no_targets(self):
        rng = np.random.default_rng(1)
        edges = op2.Set(10, "edges")
        cells = op2.Set(5, "cells")
        e2c = op2.Map(edges, cells, 1, rng.integers(0, 5, size=(10, 1)))
        q = op2.Dat(cells, 1, data=np.ones((5, 1)), name="q")
        out = op2.Dat(edges, 1, data=np.zeros((10, 1)), name="out")
        args = [q(op2.READ, e2c, 0), out(op2.WRITE)]
        assert race_targets(args, 10).size == 0


class TestCheckPlan:
    def test_real_plan_is_race_free(self):
        k, edges, args, plan = flux_setup()
        assert check_plan(plan, args, loop="flux") > 0

    def test_airfoil_res_calc_plan_is_race_free(self):
        from repro.apps.airfoil.mesh import generate_mesh

        m = generate_mesh(8, 6, jitter=0.1)
        args = [
            m.x(op2.READ, m.edge2node, 0),
            m.q(op2.READ, m.edge2cell, 0),
            m.res(op2.INC, m.edge2cell, 0),
            m.res(op2.INC, m.edge2cell, 1),
        ]
        plan = build_plan(m.edges, args, n_elements=m.edges.size)
        assert check_plan(plan, args, loop="res_calc") > 0

    def test_corrupted_block_colouring_is_flagged(self):
        k, edges, args, plan = flux_setup()
        if plan.n_block_colours < 2:
            pytest.skip("mesh too small to force block conflicts")
        with pytest.raises(RaceViolation, match="share block colour"):
            check_plan(corrupt(plan, blocks=True), args, loop="flux")

    def test_corrupted_elem_colouring_is_flagged(self):
        k, edges, args, plan = flux_setup()
        with pytest.raises(RaceViolation, match="share element colour"):
            check_plan(corrupt(plan, elems=True), args, loop="flux")

    def test_violation_names_loop_and_target(self):
        k, edges, args, plan = flux_setup()
        with pytest.raises(RaceViolation, match="'flux'.*write location"):
            check_plan(corrupt(plan, elems=True), args, loop="flux")

    def test_no_targets_is_trivially_clean(self):
        rng = np.random.default_rng(2)
        elems = op2.Set(10, "elems")
        d = op2.Dat(elems, 1, data=rng.random((10, 1)), name="d")
        o = op2.Dat(elems, 1, data=np.zeros((10, 1)), name="o")
        args = [d(op2.READ), o(op2.WRITE)]
        plan = build_plan(elems, args, n_elements=10)
        assert check_plan(plan, args) == 0


class TestTornUpdate:
    def test_good_plan_is_order_independent(self):
        k, edges, args, plan = flux_setup()
        torn_update_check(k, edges, args, block_size=16)

    def test_corrupted_plan_tears_updates(self):
        k, edges, args, plan = flux_setup()
        with pytest.raises(RaceViolation, match="torn-update"):
            torn_update_check(k, edges, args, block_size=16,
                              plan=corrupt(plan, elems=True))

    def test_leaves_real_data_untouched(self):
        k, edges, args, plan = flux_setup()
        before = args[1].dat.data.copy()
        torn_update_check(k, edges, args, block_size=16)
        np.testing.assert_array_equal(args[1].dat.data, before)

    def test_inc_global_tolerated_reassociation(self):
        rng = np.random.default_rng(3)
        n, m = 80, 20
        elems = op2.Set(n, "elems")
        nodes = op2.Set(m, "nodes")
        e2n = op2.Map(elems, nodes, 1, rng.integers(0, m, size=(n, 1)))
        w = op2.Dat(elems, 1, data=rng.random((n, 1)), name="w")
        acc = op2.Dat(nodes, 1, data=np.zeros((m, 1)), name="acc")
        total = op2.Global(1, 0.0, name="total")

        def scatter_sum(wv, av, tv):
            av[0] += wv[0]
            tv[0] += wv[0]

        def scatter_sum_vec(wv, av, tv):
            av[:] += wv
            tv[0] += wv.sum()

        k = op2.Kernel(scatter_sum, name="scatter_sum", vec_func=scatter_sum_vec)
        args = [w(op2.READ), acc(op2.INC, e2n, 0), total(op2.INC)]
        torn_update_check(k, elems, args, block_size=8)
