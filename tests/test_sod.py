"""Sod shock tube: the analytic-oracle validation of the hydro scheme."""

import numpy as np
import pytest

from repro.apps.sod import SodApp, exact_sod_solution, riemann_star_state


class TestExactRiemannSolver:
    def test_sod_star_state(self):
        """Textbook values (Toro): p* = 0.30313, u* = 0.92745."""
        p_star, u_star = riemann_star_state((1.0, 0.0, 1.0), (0.125, 0.0, 0.1))
        assert p_star == pytest.approx(0.30313, abs=1e-4)
        assert u_star == pytest.approx(0.92745, abs=1e-4)

    def test_symmetric_problem_has_zero_contact_velocity(self):
        p_star, u_star = riemann_star_state((1.0, -1.0, 1.0), (1.0, 1.0, 1.0))
        assert u_star == pytest.approx(0.0, abs=1e-10)

    def test_trivial_problem_keeps_state(self):
        p_star, u_star = riemann_star_state((1.0, 0.5, 1.0), (1.0, 0.5, 1.0))
        assert p_star == pytest.approx(1.0, rel=1e-8)
        assert u_star == pytest.approx(0.5, rel=1e-8)

    def test_solution_structure_at_t(self):
        x = np.linspace(0, 1, 1000)
        sol = exact_sod_solution(x, 0.2)
        # undisturbed ends
        assert sol["rho"][0] == pytest.approx(1.0)
        assert sol["rho"][-1] == pytest.approx(0.125)
        # density monotone decreasing across the whole wave fan for Sod
        assert sol["rho"].max() == pytest.approx(1.0)
        assert sol["rho"].min() == pytest.approx(0.125)
        # contact: density jumps while pressure/velocity stay continuous
        contact = 0.5 + 0.92745 * 0.2
        i = np.searchsorted(x, contact)
        assert abs(sol["p"][i - 2] - sol["p"][i + 2]) < 1e-6
        assert sol["rho"][i - 3] - sol["rho"][i + 3] > 0.1


class TestSodApp:
    @pytest.fixture(scope="class")
    def solved(self):
        app = SodApp(n=200)
        t = app.run_until(0.2)
        return app, t

    def test_mass_exactly_conserved(self, solved):
        app, _ = solved
        assert app.total_mass() == pytest.approx(0.5625, rel=1e-12)

    def test_l1_error_small(self, solved):
        app, t = solved
        exact = exact_sod_solution(app.centres(), t)
        err = np.abs(app.profiles()["rho"] - exact["rho"]).mean()
        assert err < 0.02

    def test_wave_positions(self, solved):
        """Shock, contact and rarefaction land where the exact solution says."""
        app, t = solved
        prof = app.profiles()
        x = app.centres()
        # shock: last point where u > half the star velocity
        u_star = 0.92745
        shock_num = x[np.nonzero(prof["u"] > 0.5 * u_star)[0][-1]]
        shock_exact = 0.5 + 1.75216 * t
        assert shock_num == pytest.approx(shock_exact, abs=0.03)
        # rarefaction head: first disturbed point from the left
        head_num = x[np.nonzero(prof["u"] > 1e-3)[0][0]]
        head_exact = 0.5 - np.sqrt(1.4) * t
        assert head_num == pytest.approx(head_exact, abs=0.03)

    def test_star_plateau_values(self, solved):
        app, t = solved
        prof = app.profiles()
        x = app.centres()
        # sample mid-plateau between contact and shock
        window = (x > 0.5 + 0.95 * t) & (x < 0.5 + 1.6 * t)
        assert prof["u"][window].mean() == pytest.approx(0.92745, abs=0.05)
        assert prof["p"][window].mean() == pytest.approx(0.30313, abs=0.03)

    def test_convergence_with_resolution(self):
        errs = []
        for n in (100, 400):
            app = SodApp(n=n)
            t = app.run_until(0.2)
            exact = exact_sod_solution(app.centres(), t)
            errs.append(np.abs(app.profiles()["rho"] - exact["rho"]).mean())
        assert errs[1] < 0.6 * errs[0]

    def test_seq_backend_matches_vec(self):
        a = SodApp(n=40, backend="seq")
        b = SodApp(n=40, backend="vec")
        for _ in range(5):
            a.step()
            b.step()
        np.testing.assert_allclose(
            a.profiles()["rho"], b.profiles()["rho"], rtol=1e-12
        )
