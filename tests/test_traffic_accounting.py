"""Unique-traffic accounting: the cache-reuse foundation of the perf model."""

import numpy as np
import pytest

from repro import op2, ops
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.machine import RooflineModel, XEON_E5_2697V2
from repro.machine.roofline import LoopTraffic
from repro.perfmodel import characterise


def k_two_sided(a, b, xa, xb):
    a[0] += xb[0]
    b[0] += xa[0]


K2 = op2.Kernel(k_two_sided, "k_two_sided")


def run_chain(n=20):
    nodes, edges = op2.Set(n + 1), op2.Set(n)
    m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n)])
    x = op2.Dat(nodes, 1, np.ones(n + 1))
    acc = op2.Dat(nodes, 1)
    c = PerfCounters()
    with counters_scope(c):
        op2.par_loop(
            K2, edges,
            acc(op2.INC, m, 0), acc(op2.INC, m, 1),
            x(op2.READ, m, 0), x(op2.READ, m, 1),
        )
    return c.loop("k_two_sided"), n


class TestOP2UniqueAccounting:
    def test_referenced_counts_both_slots(self):
        rec, n = run_chain()
        # x read through two slots: 2 * n * 8 bytes referenced
        assert rec.indirect_reads == 2 * 2 * n * 8  # x (2 slots) + acc reads-by-INC

    def test_unique_is_union_across_slots(self):
        rec, n = run_chain()
        # both x slots together touch exactly n+1 distinct nodes, once
        # (and acc likewise): unique read bytes = 2 dats * (n+1) * 8
        assert rec.indirect_reads_unique == 2 * (n + 1) * 8

    def test_unique_never_exceeds_referenced(self):
        rec, _ = run_chain()
        assert rec.indirect_reads_unique <= rec.indirect_reads
        assert rec.indirect_writes_unique <= rec.indirect_writes

    def test_characterise_propagates_unique(self):
        rec, n = run_chain()
        ch = characterise(rec)
        assert ch.traffic.bytes_indirect_unique is not None
        assert ch.traffic.bytes_indirect_unique < ch.traffic.bytes_indirect


class TestOPSStencilAccounting:
    def test_five_point_read_mostly_cached(self):
        blk = ops.Block(2)
        u = ops.Dat(blk, (10, 10), halo_depth=2)
        v = ops.Dat(blk, (10, 10), halo_depth=2)

        def smooth(a, b):
            b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])

        c = PerfCounters()
        with counters_scope(c):
            ops.par_loop(smooth, blk, [(1, 9), (1, 9)], u(ops.READ, ops.S2D_5PT),
                         v(ops.WRITE))
        rec = c.loop("smooth")
        pts = 8 * 8
        assert rec.bytes_read == pts * 8 * 5
        # 4 of the 5 loads are cached re-references
        assert rec.indirect_reads == pts * 8 * 4
        assert rec.indirect_reads_unique == 0


class TestRooflineReuse:
    def _loop(self, unique_frac):
        return LoopTraffic(
            "l",
            bytes_direct=0.0,
            bytes_indirect=1e9,
            flops=0.0,
            bytes_indirect_unique=unique_frac * 1e9,
        )

    def test_full_reuse_machine_charges_unique_only(self):
        m = RooflineModel(XEON_E5_2697V2)  # cache_reuse = 1.0
        t_all = m.memory_seconds(self._loop(1.0))
        t_quarter = m.memory_seconds(self._loop(0.25))
        assert t_quarter == pytest.approx(t_all / 4)

    def test_effective_bytes_between_unique_and_referenced(self):
        import dataclasses

        machine = dataclasses.replace(XEON_E5_2697V2, cache_reuse=0.5)
        m = RooflineModel(machine)
        loop = self._loop(0.5)
        eff = m.effective_bytes(loop)
        assert 0.5e9 < eff < 1e9

    def test_no_unique_info_means_no_reuse_credit(self):
        m = RooflineModel(XEON_E5_2697V2)
        loop = LoopTraffic("l", bytes_direct=0.0, bytes_indirect=1e9, flops=0.0)
        assert m.effective_bytes(loop) == pytest.approx(1e9)
