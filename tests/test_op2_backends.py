"""Backend equivalence: seq / vec / openmp / cuda must agree bitwise-ish.

The sequential backend is the semantic reference; every array backend must
reproduce it on direct loops, indirect reads, indirect increments and
global reductions — including on randomly generated meshes (hypothesis).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2
from repro.common.config import swap
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope

BACKENDS = ["seq", "vec", "openmp", "cuda"]


# module-level kernels so inspect.getsource works
def k_scale(v, out):
    out[0] = 2.0 * v[0] + 1.0


def k_edge_inc(a, b, xa, xb):
    a[0] += xb[0]
    b[0] += xa[0]


def k_gather2(xa, xb, out):
    out[0] = xa[0] * xb[0]


def k_reduce(v, g):
    g[0] += v[0] * v[0]


def k_minmax(v, lo, hi):
    lo[0] = min(lo[0], v[0])
    hi[0] = max(hi[0], v[0])


def k_multidim(q, out):
    for n in range(3):
        out[n] = q[n] + float(n)


K_SCALE = op2.Kernel(k_scale, "k_scale", flops_per_elem=2)
K_EDGE_INC = op2.Kernel(k_edge_inc, "k_edge_inc", flops_per_elem=2)
K_GATHER2 = op2.Kernel(k_gather2, "k_gather2", flops_per_elem=1)
K_REDUCE = op2.Kernel(k_reduce, "k_reduce", flops_per_elem=2)
K_MINMAX = op2.Kernel(k_minmax, "k_minmax")
K_MULTIDIM = op2.Kernel(k_multidim, "k_multidim")


def run_direct(backend, n=20):
    s = op2.Set(n)
    v = op2.Dat(s, 1, np.arange(n, dtype=float))
    out = op2.Dat(s, 1)
    op2.par_loop(K_SCALE, s, v(op2.READ), out(op2.WRITE), backend=backend)
    return out.data.copy()


@pytest.mark.parametrize("backend", BACKENDS)
def test_direct_loop(backend):
    np.testing.assert_allclose(run_direct(backend), run_direct("seq"))


def run_indirect_inc(backend, n=30):
    nodes, edges = op2.Set(n + 1), op2.Set(n)
    m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n)])
    x = op2.Dat(nodes, 1, np.linspace(1, 2, n + 1))
    acc = op2.Dat(nodes, 1)
    op2.par_loop(
        K_EDGE_INC,
        edges,
        acc(op2.INC, m, 0),
        acc(op2.INC, m, 1),
        x(op2.READ, m, 0),
        x(op2.READ, m, 1),
        backend=backend,
    )
    return acc.data.copy()


@pytest.mark.parametrize("backend", BACKENDS)
def test_indirect_increment(backend):
    np.testing.assert_allclose(run_indirect_inc(backend), run_indirect_inc("seq"))


@pytest.mark.parametrize("backend", BACKENDS)
def test_indirect_gather(backend):
    n = 12
    nodes, edges = op2.Set(n + 1), op2.Set(n)
    m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n)])
    x = op2.Dat(nodes, 1, np.arange(n + 1, dtype=float) + 1)
    out = op2.Dat(edges, 1)
    op2.par_loop(
        K_GATHER2, edges, x(op2.READ, m, 0), x(op2.READ, m, 1), out(op2.WRITE),
        backend=backend,
    )
    expect = [(i + 1) * (i + 2) for i in range(n)]
    np.testing.assert_allclose(out.data[:, 0], expect)


@pytest.mark.parametrize("backend", BACKENDS)
def test_global_sum(backend):
    s = op2.Set(10)
    v = op2.Dat(s, 1, np.arange(10, dtype=float))
    g = op2.Global(1, 0.0)
    op2.par_loop(K_REDUCE, s, v(op2.READ), g(op2.INC), backend=backend)
    assert g.value == pytest.approx(float((np.arange(10.0) ** 2).sum()))


@pytest.mark.parametrize("backend", BACKENDS)
def test_global_min_max(backend):
    s = op2.Set(7)
    v = op2.Dat(s, 1, [3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.0])
    lo = op2.Global(1, 1e30)
    hi = op2.Global(1, -1e30)
    op2.par_loop(K_MINMAX, s, v(op2.READ), lo(op2.MIN), hi(op2.MAX), backend=backend)
    assert lo.value == -9.0
    assert hi.value == 5.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_multidim_dat(backend):
    s = op2.Set(5)
    q = op2.Dat(s, 3, np.arange(15, dtype=float))
    out = op2.Dat(s, 3)
    op2.par_loop(K_MULTIDIM, s, q(op2.READ), out(op2.WRITE), backend=backend)
    np.testing.assert_allclose(out.data, q.data + np.asarray([0.0, 1.0, 2.0]))


def test_global_inc_accumulates_across_loops():
    s = op2.Set(4)
    v = op2.Dat(s, 1, np.ones(4))
    g = op2.Global(1, 10.0)
    op2.par_loop(K_REDUCE, s, v(op2.READ), g(op2.INC))
    op2.par_loop(K_REDUCE, s, v(op2.READ), g(op2.INC))
    assert g.value == pytest.approx(18.0)


def test_n_elements_restricts_iteration():
    s = op2.Set(10)
    v = op2.Dat(s, 1, np.ones(10))
    out = op2.Dat(s, 1)
    op2.par_loop(K_SCALE, s, v(op2.READ), out(op2.WRITE), n_elements=4)
    assert out.data[:4].all() and not out.data[4:].any()


def test_counters_account_traffic():
    s = op2.Set(10)
    v = op2.Dat(s, 1, np.ones(10))
    out = op2.Dat(s, 1)
    c = PerfCounters()
    with counters_scope(c):
        op2.par_loop(K_SCALE, s, v(op2.READ), out(op2.WRITE))
    rec = c.loop("k_scale")
    assert rec.iterations == 10
    assert rec.bytes_read == 10 * 8
    assert rec.bytes_written == 10 * 8
    assert rec.flops == 20


def test_counters_tag_indirect_traffic():
    c = PerfCounters()
    with counters_scope(c):
        run_indirect_inc("vec")
    rec = c.loop("k_edge_inc")
    assert rec.indirect_reads > 0
    assert rec.indirect_writes > 0


def test_openmp_counts_colours():
    c = PerfCounters()
    with counters_scope(c):
        run_indirect_inc("openmp")
    assert c.loop("k_edge_inc").colours >= 1


def test_unknown_backend_rejected():
    s = op2.Set(2)
    v = op2.Dat(s, 1)
    with pytest.raises(Exception, match="unknown backend"):
        op2.par_loop(K_SCALE, s, v(op2.READ), v(op2.RW), backend="fpga")


def test_non_kernel_rejected():
    s = op2.Set(2)
    with pytest.raises(Exception, match="Kernel"):
        op2.par_loop(lambda: None, s)


class TestRandomMeshEquivalence:
    """Property test: on random meshes every backend matches seq."""

    @given(
        n_nodes=st.integers(2, 25),
        n_edges=st.integers(1, 60),
        seed=st.integers(0, 2**31),
        backend=st.sampled_from(["vec", "openmp", "cuda"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_indirect_inc_matches_seq(self, n_nodes, n_edges, seed, backend):
        rng = np.random.default_rng(seed)
        conn = np.stack(
            [rng.integers(0, n_nodes, n_edges), rng.integers(0, n_nodes, n_edges)],
            axis=1,
        )
        xvals = rng.standard_normal(n_nodes)

        def build():
            nodes, edges = op2.Set(n_nodes), op2.Set(n_edges)
            m = op2.Map(edges, nodes, 2, conn)
            x = op2.Dat(nodes, 1, xvals)
            acc = op2.Dat(nodes, 1)
            return nodes, edges, m, x, acc

        results = {}
        for be in ("seq", backend):
            _, edges, m, x, acc = build()
            with swap(plan_block_size=4, cuda_block_size=4):
                op2.par_loop(
                    K_EDGE_INC,
                    edges,
                    acc(op2.INC, m, 0),
                    acc(op2.INC, m, 1),
                    x(op2.READ, m, 0),
                    x(op2.READ, m, 1),
                    backend=be,
                )
            results[be] = acc.data.copy()
        np.testing.assert_allclose(results[backend], results["seq"], atol=1e-12)
