"""MPI host-code generation: the access-derived communication schedule."""

import pytest

from repro.translator.codegen.mpi_c import communication_plan, generate_mpi_host
from repro.translator.frontend import parse_app_source

RES_CALC = """
op2.par_loop(res_calc, m.edges,
             m.x(op2.READ, m.e2n, 0),
             m.x(op2.READ, m.e2n, 1),
             m.q(op2.READ, m.e2c, 0),
             m.q(op2.READ, m.e2c, 1),
             m.res(op2.INC, m.e2c, 0),
             m.res(op2.INC, m.e2c, 1))
"""

UPDATE = """
op2.par_loop(update, m.cells,
             m.qold(op2.READ), m.q(op2.WRITE), m.res(op2.RW),
             rms(op2.INC))
"""


class TestCommunicationPlan:
    def test_indirect_reads_get_forward_exchange(self):
        site = parse_app_source(RES_CALC)[0]
        plan = communication_plan(site)
        assert plan["forward"] == ["m.x", "m.q"]

    def test_indirect_inc_gets_reverse_exchange(self):
        site = parse_app_source(RES_CALC)[0]
        plan = communication_plan(site)
        assert plan["reverse"] == ["m.res"]

    def test_duplicate_slots_deduplicated(self):
        site = parse_app_source(RES_CALC)[0]
        plan = communication_plan(site)
        # res appears through two map slots but is exchanged once
        assert plan["reverse"].count("m.res") == 1

    def test_direct_loop_no_exchanges(self):
        site = parse_app_source(UPDATE)[0]
        plan = communication_plan(site, globals_hint={"rms"})
        assert plan["forward"] == []
        assert plan["reverse"] == []

    def test_written_dats_dirtied(self):
        site = parse_app_source(UPDATE)[0]
        plan = communication_plan(site, globals_hint={"rms"})
        assert set(plan["dirtied"]) == {"m.q", "m.res"}

    def test_global_inc_becomes_allreduce(self):
        site = parse_app_source(UPDATE)[0]
        plan = communication_plan(site, globals_hint={"rms"})
        assert plan["reductions"] == ["rms:MPI_SUM"]

    def test_min_global_detected_without_hint(self):
        site = parse_app_source("op2.par_loop(k, s, dt(op2.MIN))")[0]
        plan = communication_plan(site)
        assert plan["reductions"] == ["dt:MPI_MIN"]

    def test_matches_runtime_decisions(self):
        """The generated schedule equals what RankMesh.par_loop really does."""
        import numpy as np

        from repro import op2
        from repro.op2.halo import build_partitioned_mesh
        from repro.op2.partition import partition_set
        from repro.simmpi import World, run_spmd

        site = parse_app_source(RES_CALC)[0]
        plan = communication_plan(site)

        def k(x0, x1, q0, q1, r0, r1):
            r0[0] += x0[0] * q1[0]
            r1[0] += x1[0] * q0[0]

        K = op2.Kernel(k, "k")
        nodes, edges = op2.Set(13, "nodes"), op2.Set(12, "edges")
        m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(12)])
        x = op2.Dat(nodes, 1, np.ones(13))
        q = op2.Dat(nodes, 1, np.ones(13))
        res = op2.Dat(nodes, 1)
        assign = partition_set(12, 3, "block").assignment
        pm = build_partitioned_mesh(3, edges, assign, [m], [x, q, res])
        world = World(3)

        def main(comm):
            pm.local(comm.rank).par_loop(
                comm, K, edges,
                x(op2.READ, m, 0), x(op2.READ, m, 1),
                q(op2.READ, m, 0), q(op2.READ, m, 1),
                res(op2.INC, m, 0), res(op2.INC, m, 1),
            )

        run_spmd(3, main, world=world)
        total = world.total_counters()
        # forward exchanges for x and q (2 dats) + 1 reverse for res, per rank
        # with halos: each rank performed forward(x) + forward(q) + reverse(res)
        expected_per_rank = len(plan["forward"]) + len(plan["reverse"])
        assert total.halo_exchanges == 3 * expected_per_rank


class TestGeneratedText:
    def test_stub_structure(self):
        site = parse_app_source(RES_CALC)[0]
        code = generate_mpi_host(site)
        assert "op_halo_exchange(m_x);" in code
        assert "op_halo_exchange(m_q);" in code
        assert "op_zero_halo(m_res);" in code
        assert "op_reverse_halo_exchange(m_res);" in code
        assert code.index("op_zero_halo") < code.index("_local(")
        assert code.index("_local(") < code.index("op_reverse_halo_exchange")

    def test_allreduce_emitted(self):
        site = parse_app_source(UPDATE)[0]
        code = generate_mpi_host(site, globals_hint={"rms"})
        assert "MPI_Allreduce(MPI_IN_PLACE, rms, 1, MPI_DOUBLE, MPI_SUM, OP_MPI_WORLD);" in code


class TestDriverMPITarget:
    def test_mpi_files_emitted(self, tmp_path):
        from repro.translator.driver import translate_app

        app = tmp_path / "app.py"
        app.write_text(RES_CALC)
        result = translate_app(app, tmp_path / "gen", targets=("mpi",))
        mpi_files = [f for f in result.files if f.suffix == ".c"]
        assert len(mpi_files) == 1
        assert "op_reverse_halo_exchange" in mpi_files[0].read_text()
