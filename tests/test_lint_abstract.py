"""The abstract interpreter, kernel certificates, and their runtime hooks.

Covers the PR 8 tentpole surface: interval/dtype/effects domains over the
kernel IR, certificate coverage for every bundled app kernel, the lazy
queue consuming certified extents, the execplan purity gate, the
translator manifest section, and the baseline-update CLI.
"""

from __future__ import annotations

import ast
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import ops
from repro.lint.abstract import (
    Interval,
    analyze_kernel,
    certify_callable,
    clear_certificate_cache,
)
from repro.lint.cli import lint_many, main as lint_main
from repro.ops import execplan as ops_exec
from repro.ops import lazy as lazy_mod

REPO = Path(__file__).parents[1]
CORPUS = Path(__file__).parent / "lint_corpus"

ALL_APPS = [
    "repro.apps.airfoil.app",
    "repro.apps.cloverleaf.app",
    "repro.apps.cloverleaf3d.app",
    "repro.apps.sod.app",
    "repro.apps.hydra.app",
    "repro.apps.multiblock.app",
]


def _an(src: str, dtypes=None):
    return analyze_kernel(ast.parse(src).body[0], dtypes)


# -- the domains ---------------------------------------------------------------


class TestIntervalDomain:
    def test_range_loop_extent_is_proven(self):
        an = _an("def k(a, b):\n"
                 "    s = 0.0\n"
                 "    for n in range(4):\n"
                 "        s = s + a[n]\n"
                 "    b[0] = s\n")
        assert set(an.params["a"].read_points()) == {(0,), (1,), (2,), (3,)}

    def test_conditional_joins_extents(self):
        an = _an("def k(a, b):\n"
                 "    if a[0] > 0.0:\n"
                 "        b[0] = a[1]\n"
                 "    else:\n"
                 "        b[0] = a[-1]\n")
        assert set(an.params["a"].read_points()) == {(0,), (1,), (-1,)}
        # branch accesses are may-accesses: the result is sound, not exact
        assert not an.params["a"].exact

    def test_index_arithmetic_through_locals(self):
        an = _an("def k(a, b):\n"
                 "    off = 2 - 1\n"
                 "    b[0] = a[off] + a[-off]\n")
        assert set(an.params["a"].read_points()) == {(1,), (-1,)}

    def test_escaped_parameter_is_unbounded(self):
        an = _an("def k(a, b):\n    b[0] = helper(a)\n")
        assert an.params["a"].read_points() is None
        assert not an.pure  # unknown call

    def test_interval_is_frozen_value(self):
        assert Interval(0, 3).dense and Interval(0, 3).lo == 0


class TestEffects:
    def test_rng_call_is_detected(self):
        an = _an("def k(a, b):\n    b[0] = a[0] + np.random.uniform()\n")
        assert an.rng and not an.pure

    def test_whitelisted_calls_stay_pure(self):
        an = _an("def k(a, b):\n    b[0] = math.sqrt(abs(min(a[0], 1.0)))\n")
        assert an.pure and not an.unknown_calls

    def test_free_reads_are_recorded(self):
        an = _an("def k(a, b):\n    b[0] = a[0] * gamma\n")
        assert "gamma" in an.free_reads


# -- certificates --------------------------------------------------------------


class TestCertifyCallable:
    def test_cached_by_code_object_across_closures(self):
        clear_certificate_cache()

        def make(c):
            def k(a, b):
                b[0, 0] = a[0, 0] * c
            return k

        c1, c2 = certify_callable(make(1.0)), certify_callable(make(2.0))
        assert c1 is c2
        assert c1.reads_of("a") == ((0, 0),)
        assert c1.translatable

    def test_rng_kernel_is_not_translatable(self):
        def k(a, b):
            b[0, 0] = a[0, 0] + np.random.uniform()

        cert = certify_callable(k)
        assert cert.rng and not cert.pure and not cert.translatable
        assert "uses a random-number generator" in cert.reasons

    def test_unrecoverable_source_degrades_gracefully(self):
        fn = eval("lambda a, b: None")
        cert = certify_callable(fn)
        assert not cert.translatable and not cert.complete

    def test_to_dict_roundtrips_through_json(self):
        def k(a, b):
            b[0] = a[0] + a[1]

        d = json.loads(json.dumps(certify_callable(k).to_dict()))
        assert d["read_extents"]["a"] == [[0], [1]]
        assert d["translatable"] is True


class TestAppCertificates:
    """Acceptance: every bundled-app kernel receives a certificate."""

    @pytest.fixture(scope="class")
    def certs(self):
        return lint_many(ALL_APPS).certificates

    def test_every_app_contributes_certificates(self, certs):
        pkgs = {k.split(".")[0] for k in certs}
        assert pkgs >= {"airfoil", "cloverleaf", "cloverleaf3d", "sod",
                        "hydra", "multiblock"}
        assert len(certs) >= 60

    def test_extents_proven_outside_known_exceptions(self, certs):
        # cloverleaf3d's closure-helper kernels are the only ones whose
        # extents legitimately stay unbounded; everything else is proven
        for name, c in certs.items():
            if name.startswith("cloverleaf3d."):
                continue
            assert c.complete, (name, c.reasons)
            assert all(pts is not None for _, pts in c.read_extents), name
            assert all(pts is not None for _, pts in c.write_extents), name
            assert c.translatable, (name, c.reasons)

    def test_no_bundled_kernel_uses_rng(self, certs):
        assert not any(c.rng for c in certs.values())


# -- runtime hooks -------------------------------------------------------------


def _centre_only(a, b):
    b[0, 0] = 2.0 * a[0, 0]


def _noisy(a, b):
    b[0, 0] = a[0, 0] + np.random.uniform()


def _setup(nx=8, ny=6):
    blk = ops.Block(2)
    u = ops.Dat(blk, (nx, ny), name="u")
    v = ops.Dat(blk, (nx, ny), name="v")
    u.interior[...] = np.arange(nx * ny, dtype=float).reshape(nx, ny)
    return blk, u, v


class TestLazyCertifiedExtents:
    def test_overdeclared_stencil_is_tightened_to_proof(self):
        blk, u, v = _setup()
        with lazy_mod.lazy_scope():
            ops.par_loop(_centre_only, blk, [(1, 7), (1, 5)],
                         u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                         backend="vec")
            (q,) = lazy_mod._state.queue
            (rec,) = [r for r in q.spec.accesses if r.ref == u.token]
            assert rec.offsets == ((0, 0),)  # proven, not the declared 5pt

    def test_unprovable_kernel_keeps_declared_extents(self):
        def opaque(a, b):
            alias = a  # bare parameter reference: extents become unprovable
            b[0, 0] = alias[0, 0] + 0.0

        blk, u, v = _setup()
        with lazy_mod.lazy_scope():
            ops.par_loop(opaque, blk, [(1, 7), (1, 5)],
                         u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                         backend="vec")
            (q,) = lazy_mod._state.queue
            (rec,) = [r for r in q.spec.accesses if r.ref == u.token]
            assert set(rec.offsets) == set(
                tuple(p) for p in ops.S2D_5PT.points
            )

    def test_rng_kernel_never_fuses(self):
        blk, u, v = _setup()
        with lazy_mod.lazy_scope():
            ops.par_loop(_noisy, blk, [(1, 7), (1, 5)],
                         u(ops.READ), v(ops.WRITE), backend="vec")
            (q,) = lazy_mod._state.queue
            assert q.spec.fusable is False

    def test_tightened_queue_still_executes_correctly(self):
        blk, u, v = _setup()
        ref = 2.0 * u.interior.copy()
        with lazy_mod.lazy_scope():
            ops.par_loop(_centre_only, blk, [(0, 8), (0, 6)],
                         u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                         backend="vec")
        np.testing.assert_array_equal(v.interior, ref)


class TestExecplanPurityGate:
    def test_rng_kernel_is_never_plan_cached(self):
        from repro.common.config import swap

        blk, u, v = _setup()
        ops.clear_plan_cache()
        before = ops_exec.plan_cache_stats()
        with swap(use_execplan=True):
            ops.par_loop(_noisy, blk, [(1, 7), (1, 5)],
                         u(ops.READ), v(ops.WRITE), backend="vec")
            after_rng = ops_exec.plan_cache_stats()
            # the RNG kernel never touched the registry: no entry, no miss
            assert after_rng["size"] == 0
            assert after_rng["misses"] == before["misses"]
            ops.par_loop(_centre_only, blk, [(1, 7), (1, 5)],
                         u(ops.READ), v(ops.WRITE), backend="vec")
            assert ops_exec.plan_cache_stats()["size"] == 1


class TestManifestCertificates:
    def test_translation_manifest_carries_certificates(self, tmp_path):
        from repro.translator.driver import translate_app

        app = CORPUS / "good_saxpy.py"
        translate_app(app, tmp_path, targets=("python",))
        manifest = json.loads(
            (tmp_path / "translation_manifest.json").read_text()
        )
        certs = manifest["certificates"]
        (name,) = [k for k in certs if k.endswith(".saxpy")]
        assert certs[name]["translatable"] is True
        assert certs[name]["read_extents"]["x"] == [[0]]


# -- CLI satellites ------------------------------------------------------------


class TestUpdateBaseline:
    def _baseline(self, tmp_path, entries):
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps({"version": 1, "suppressions": entries}))
        return p

    def test_stale_entries_are_pruned(self, tmp_path, capsys):
        p = self._baseline(tmp_path, [
            {"code": "OPL001", "module": "opl001_read_assigned.py",
             "reason": "known"},
            {"code": "OPL004", "module": "no_such_file.py",
             "reason": "stale leftover"},
        ])
        rc = lint_main([str(CORPUS / "opl001_read_assigned.py"),
                        "--baseline", str(p), "--update-baseline"])
        assert rc == 0
        kept = json.loads(p.read_text())["suppressions"]
        assert len(kept) == 1 and kept[0]["code"] == "OPL001"
        assert json.loads(p.read_text())["version"] == 1
        assert "1 stale entries pruned" in capsys.readouterr().err

    def test_fail_on_stale_gates(self, tmp_path):
        p = self._baseline(tmp_path, [
            {"code": "OPL004", "module": "no_such_file.py",
             "reason": "stale leftover"},
        ])
        args = [str(CORPUS / "good_saxpy.py"), "--baseline", str(p)]
        assert lint_main(args) == 0  # stale alone is only a warning...
        assert lint_main(args + ["--fail-on-stale"]) == 1  # ...until gated

    def test_update_requires_baseline(self, capsys):
        assert lint_main([str(CORPUS / "good_saxpy.py"),
                          "--update-baseline"]) == 2
        assert "requires --baseline" in capsys.readouterr().err


class TestConsoleScript:
    def test_entry_point_is_declared(self):
        text = (REPO / "pyproject.toml").read_text()
        assert 'repro-lint = "repro.lint.cli:main"' in text

    def test_cli_smoke_via_entry_function(self):
        # CI runs from the source tree (no install), so exercise the exact
        # function the console script binds to through the interpreter
        proc = subprocess.run(
            [sys.executable, "-c",
             "import sys; from repro.lint.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             str(CORPUS / "good_saxpy.py")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "0 error(s)" in proc.stdout or "clean" in proc.stdout.lower() \
            or proc.stdout.strip()
