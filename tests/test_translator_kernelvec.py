"""The elementwise-to-vectorised kernel translator."""

import math

import numpy as np
import pytest

from repro.common.errors import TranslatorError
from repro.translator.kernelvec import vectorise_kernel

GCONST = 2.5


def k_basic(a, b):
    b[0] = a[0] * 2.0


def k_math(a, out):
    out[0] = math.sqrt(abs(a[0])) + math.exp(0.0)


def k_minmax(a, b, out):
    out[0] = min(a[0], b[0], 0.5)


def k_ternary(a, out):
    out[0] = a[0] if a[0] > 0.0 else -a[0]


def k_loop(q, out):
    for n in range(3):
        out[n] = q[n] + 1.0


def k_const(a, out):
    out[0] = GCONST * a[0]


def k_augassign(a, out):
    out[0] += a[0]
    out[0] -= 0.5 * a[0]


def k_locals(a, b, out):
    dx = a[0] - b[0]
    dy = dx * dx
    out[0] = dy + dx


def run(gen, *cols):
    arrays = [np.asarray(c, dtype=float).reshape(-1, len(np.atleast_2d(c)[0]) if np.asarray(c).ndim > 1 else 1) for c in cols]
    gen.func(*arrays)
    return arrays


class TestTranslation:
    def test_subscripts_become_columns(self):
        gen = vectorise_kernel(k_basic)
        assert "a[:, 0]" in gen.source
        assert gen.name == "k_basic_vec"

    def test_basic_execution(self):
        gen = vectorise_kernel(k_basic)
        a = np.asarray([[1.0], [2.0]])
        b = np.zeros((2, 1))
        gen.func(a, b)
        np.testing.assert_allclose(b[:, 0], [2.0, 4.0])

    def test_math_calls_mapped_to_numpy(self):
        gen = vectorise_kernel(k_math)
        assert "np.sqrt" in gen.source and "np.abs" in gen.source
        a = np.asarray([[-4.0], [9.0]])
        out = np.zeros((2, 1))
        gen.func(a, out)
        np.testing.assert_allclose(out[:, 0], [3.0, 4.0])

    def test_variadic_min_nested(self):
        gen = vectorise_kernel(k_minmax)
        assert gen.source.count("np.minimum") == 2
        a, b, out = np.asarray([[1.0]]), np.asarray([[0.2]]), np.zeros((1, 1))
        gen.func(a, b, out)
        assert out[0, 0] == 0.2

    def test_ternary_becomes_where(self):
        gen = vectorise_kernel(k_ternary)
        assert "np.where" in gen.source
        a = np.asarray([[-3.0], [2.0]])
        out = np.zeros((2, 1))
        gen.func(a, out)
        np.testing.assert_allclose(out[:, 0], [3.0, 2.0])

    def test_constant_range_loop_kept(self):
        gen = vectorise_kernel(k_loop)
        q = np.arange(6, dtype=float).reshape(2, 3)
        out = np.zeros((2, 3))
        gen.func(q, out)
        np.testing.assert_allclose(out, q + 1)

    def test_module_constants_resolved(self):
        gen = vectorise_kernel(k_const)
        a, out = np.asarray([[2.0]]), np.zeros((1, 1))
        gen.func(a, out)
        assert out[0, 0] == 5.0

    def test_augassign(self):
        gen = vectorise_kernel(k_augassign)
        a, out = np.asarray([[4.0]]), np.zeros((1, 1))
        gen.func(a, out)
        assert out[0, 0] == 2.0

    def test_scalar_locals_broadcast(self):
        gen = vectorise_kernel(k_locals)
        a, b = np.asarray([[3.0], [5.0]]), np.asarray([[1.0], [1.0]])
        out = np.zeros((2, 1))
        gen.func(a, b, out)
        np.testing.assert_allclose(out[:, 0], [6.0, 20.0])

    def test_generated_source_is_human_readable(self):
        """Paper II-C: 'all parallel code generated ... is human-readable'."""
        gen = vectorise_kernel(k_locals)
        assert gen.source.startswith("def k_locals_vec(a, b, out):")
        assert "dx = " in gen.source


class TestRestrictions:
    def test_if_statement_rejected(self):
        def k_branch(a, out):
            if a[0] > 0:
                out[0] = 1.0

        with pytest.raises(TranslatorError, match="branching"):
            vectorise_kernel(k_branch)

    def test_while_rejected(self):
        def k_while(a, out):
            while a[0] > 0:
                out[0] = 1.0

        with pytest.raises(TranslatorError, match="while"):
            vectorise_kernel(k_while)

    def test_return_value_rejected(self):
        def k_ret(a):
            return a[0]

        with pytest.raises(TranslatorError, match="return"):
            vectorise_kernel(k_ret)

    def test_unknown_call_rejected(self):
        def k_call(a, out):
            out[0] = sorted(a)[0]

        with pytest.raises(TranslatorError, match="sorted"):
            vectorise_kernel(k_call)

    def test_non_range_loop_rejected(self):
        def k_forlist(a, out):
            for n in [0, 1]:
                out[n] = a[n]

        with pytest.raises(TranslatorError, match="range"):
            vectorise_kernel(k_forlist)

    def test_lambda_rejected(self):
        with pytest.raises(TranslatorError):
            vectorise_kernel(lambda a: None, name="anon")
