"""Airfoil: physical invariants, original-vs-OP2 parity, distributed runs."""

import numpy as np
import pytest

from repro import op2
from repro.apps.airfoil import AirfoilApp, AirfoilReference, generate_mesh
from repro.apps.airfoil.kernels import K_BRES_CALC, K_RES_CALC
from repro.simmpi import run_spmd


def perturb(mesh, amplitude=0.05, seed=1):
    """Add a smooth density/energy bump so the flow actually evolves."""
    rng = np.random.default_rng(seed)
    mesh.q.data[:, 0] *= 1.0 + amplitude * rng.random(mesh.cells.size)
    mesh.q.data[:, 3] *= 1.0 + amplitude * rng.random(mesh.cells.size)


class TestMesh:
    def test_entity_counts(self):
        m = generate_mesh(8, 6)
        assert m.cells.size == 48
        assert m.nodes.size == 9 * 7
        assert m.edges.size == 7 * 6 + 8 * 5
        assert m.bedges.size == 2 * 8 + 2 * 6

    def test_boundary_flags(self):
        m = generate_mesh(8, 6)
        flags = m.bound.data[:, 0]
        assert (flags[:8] == 1.0).all()  # bottom wall
        assert (flags[8:] == 2.0).all()  # far field

    def test_cell_nodes_counter_clockwise(self):
        m = generate_mesh(4, 4)
        corners = m.x.data[m.cell2node.values]  # (n,4,2)
        # shoelace area positive for CCW
        x, y = corners[..., 0], corners[..., 1]
        area = 0.5 * np.sum(
            x * np.roll(y, -1, axis=1) - np.roll(x, -1, axis=1) * y, axis=1
        )
        assert (area > 0).all()

    def test_jitter_preserves_boundary(self):
        m = generate_mesh(6, 6, jitter=0.3)
        xs = m.x.data
        # boundary nodes stay on the unit square
        on_boundary = (
            np.isclose(xs[:, 0], 0) | np.isclose(xs[:, 0], 1)
            | np.isclose(xs[:, 1], 0) | np.isclose(xs[:, 1], 1)
        )
        assert on_boundary.sum() == 2 * 7 + 2 * 5


class TestInvariants:
    def test_uniform_flow_zero_residual(self):
        """Free-stream preservation: the defining consistency check."""
        m = generate_mesh(10, 8, jitter=0.2)
        op2.par_loop(
            K_RES_CALC, m.edges,
            m.x(op2.READ, m.edge2node, 0), m.x(op2.READ, m.edge2node, 1),
            m.q(op2.READ, m.edge2cell, 0), m.q(op2.READ, m.edge2cell, 1),
            m.adt(op2.READ, m.edge2cell, 0), m.adt(op2.READ, m.edge2cell, 1),
            m.res(op2.INC, m.edge2cell, 0), m.res(op2.INC, m.edge2cell, 1),
        )
        op2.par_loop(
            K_BRES_CALC, m.bedges,
            m.x(op2.READ, m.bedge2node, 0), m.x(op2.READ, m.bedge2node, 1),
            m.q(op2.READ, m.bedge2cell, 0), m.adt(op2.READ, m.bedge2cell, 0),
            m.res(op2.INC, m.bedge2cell, 0), m.bound(op2.READ),
        )
        assert np.abs(m.res.data).max() < 1e-12

    def test_rms_decreases_from_perturbation(self):
        """The dissipation damps a perturbation: residual shrinks."""
        m = generate_mesh(12, 10)
        perturb(m)
        app = AirfoilApp(m)
        app.run(1)
        first = np.sqrt(app.rms.value / m.cells.size)
        app.run(30)
        last = np.sqrt(app.rms.value / m.cells.size)
        assert last < first

    def test_state_stays_finite(self):
        m = generate_mesh(12, 10, jitter=0.1)
        perturb(m)
        AirfoilApp(m).run(20)
        assert np.isfinite(m.q.data).all()


class TestOriginalParity:
    """Paper Fig 3 methodology: Original vs DSL must agree exactly."""

    def test_bitwise_parity_over_iterations(self):
        m = generate_mesh(10, 8, jitter=0.1)
        perturb(m)
        ref = AirfoilReference(m)
        app = AirfoilApp(m)
        r_app = app.run(5)
        r_ref = ref.run(5)
        # the state evolves identically; the rms reduction may differ by one
        # ulp because the summation association differs (per-component
        # accumulation vs whole-array sum)
        np.testing.assert_array_equal(m.q.data, ref.q)
        assert r_app == pytest.approx(r_ref, rel=1e-13)

    @pytest.mark.parametrize("backend", ["seq", "openmp", "cuda"])
    def test_all_backends_match_reference(self, backend):
        m = generate_mesh(6, 5, jitter=0.1)
        perturb(m)
        ref = AirfoilReference(m)
        app = AirfoilApp(m, backend=backend)
        app.run(2)
        ref.run(2)
        np.testing.assert_allclose(m.q.data, ref.q, rtol=1e-12)


class TestDistributed:
    @pytest.mark.parametrize("method,nranks", [("block", 2), ("rcb", 4), ("greedy", 3)])
    def test_matches_serial(self, method, nranks):
        m_ser = generate_mesh(12, 8, jitter=0.1)
        perturb(m_ser)
        serial = AirfoilApp(m_ser)
        rms_ser = serial.run(3)

        m_par = generate_mesh(12, 8, jitter=0.1)
        perturb(m_par)
        app = AirfoilApp(m_par)
        pm = app.build_partitioned(nranks, method)

        def main(comm):
            rms = app.run_distributed(comm, pm, 3)
            return rms, pm.local(comm.rank).gather_dat(comm, m_par.q)

        out = run_spmd(nranks, main)
        rms_par, q_par = out[0]
        assert rms_par == pytest.approx(rms_ser, rel=1e-12)
        np.testing.assert_allclose(q_par, m_ser.q.data, atol=1e-12)

    def test_all_ranks_agree_on_rms(self):
        m = generate_mesh(8, 6)
        perturb(m)
        app = AirfoilApp(m)
        pm = app.build_partitioned(3, "block")
        out = run_spmd(3, lambda comm: app.run_distributed(comm, pm, 2))
        assert len(set(out)) == 1
