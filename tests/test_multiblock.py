"""Multi-block OPS app: inter-block halos produce single-block-exact results."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ops
from repro.apps.multiblock import MultiBlockDiffusion, SingleBlockDiffusion


def initial_field(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((2 * n, m))


class TestEquivalence:
    def test_two_blocks_match_union_bitwise(self):
        init = initial_field(10, 8)
        multi = MultiBlockDiffusion(10, 8, initial=init)
        single = SingleBlockDiffusion(10, 8, initial=init)
        a = multi.run(20)
        b = single.run(20)
        np.testing.assert_array_equal(a, b)

    @given(
        n=st.integers(3, 12),
        m=st.integers(3, 12),
        steps=st.integers(1, 10),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_block_split_invisible(self, n, m, steps, seed):
        init = initial_field(n, m, seed)
        a = MultiBlockDiffusion(n, m, initial=init).run(steps)
        b = SingleBlockDiffusion(n, m, initial=init).run(steps)
        np.testing.assert_allclose(a, b, atol=1e-14)


class TestConservation:
    def test_integral_conserved(self):
        init = initial_field(8, 6, seed=3)
        app = MultiBlockDiffusion(8, 6, initial=init)
        before = app.total()
        app.run(30)
        assert app.total() == pytest.approx(before, rel=1e-12)

    def test_diffusion_smooths(self):
        init = initial_field(8, 6, seed=3)
        app = MultiBlockDiffusion(8, 6, initial=init)
        spread0 = app.solution().std()
        app.run(50)
        assert app.solution().std() < 0.3 * spread0


class TestInterfaceCoupling:
    def test_no_halo_group_means_decoupled_blocks(self):
        """Without the explicit exchange the blocks evolve independently —
        demonstrating that the HaloGroup is what couples them."""
        init = np.zeros((16, 6))
        init[:8] = 1.0  # hot left block, cold right block
        app = MultiBlockDiffusion(8, 6, initial=init)

        # with coupling: heat crosses the interface
        app.run(10)
        assert app.uR.interior.max() > 0.01

        # fresh app, interface disabled
        app2 = MultiBlockDiffusion(8, 6, initial=init)
        app2.interface = ops.HaloGroup([], "disabled")
        app2.run(10)
        # right block only sees its zero ghost column: nothing crosses
        assert app2.uR.interior.max() < app.uR.interior.max()

    def test_transposed_halo_orientation(self):
        """An interface declared with a transpose still couples correctly:
        a symmetric initial condition stays symmetric."""
        n, m = 6, 6
        left = ops.Block(2)
        right = ops.Block(2)
        uL = ops.Dat(left, (n, m), halo_depth=1)
        uR = ops.Dat(right, (n, m), halo_depth=1)
        sym = np.fromfunction(lambda i, j: (i + 1) * (j + 1), (n, m))
        uL.interior[...] = sym
        uR.interior[...] = sym.T  # the right block is stored transposed
        h = ops.Halo(uL, uR, [(n - 1, n), (0, m)], [(0, n), (-1, 0)], transpose=(1, 0))
        h.apply()
        np.testing.assert_array_equal(
            uR.region([(0, n), (-1, 0)])[:, 0], uL.interior[n - 1, :]
        )
