"""Distributed OP2: partitioned meshes, halo exchanges, reductions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2
from repro.op2.halo import build_partitioned_mesh
from repro.op2.partition import partition_set
from repro.simmpi import World, run_spmd


def k_edge_inc(a, b, xa, xb):
    a[0] += xb[0]
    b[0] += xa[0]


def k_sq(v, g):
    g[0] += v[0] * v[0]


K_EDGE_INC = op2.Kernel(k_edge_inc, "k_edge_inc")
K_SQ = op2.Kernel(k_sq, "k_sq")


def chain_mesh(n):
    nodes = op2.Set(n + 1, "nodes")
    edges = op2.Set(n, "edges")
    m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n)], "e2n")
    x = op2.Dat(nodes, 1, np.linspace(0, 1, n + 1), name="x")
    acc = op2.Dat(nodes, 1, name="acc")
    return nodes, edges, m, x, acc


def serial_reference(n):
    nodes, edges, m, x, acc = chain_mesh(n)
    op2.par_loop(
        K_EDGE_INC, edges, acc(op2.INC, m, 0), acc(op2.INC, m, 1),
        x(op2.READ, m, 0), x(op2.READ, m, 1),
    )
    g = op2.Global(1, 0.0)
    op2.par_loop(K_SQ, nodes, acc(op2.READ), g(op2.INC))
    return acc.data.copy(), g.value


class TestConstruction:
    def test_layout_partition_of_ids(self):
        nodes, edges, m, x, acc = chain_mesh(20)
        assign = partition_set(20, 4, "block").assignment
        pm = build_partitioned_mesh(4, edges, assign, [m], [x, acc])
        all_owned = np.concatenate(
            [pm.local(r).layouts[id(edges)].owned_ids for r in range(4)]
        )
        assert sorted(all_owned.tolist()) == list(range(20))

    def test_halo_contains_cross_partition_nodes(self):
        nodes, edges, m, x, acc = chain_mesh(20)
        assign = partition_set(20, 4, "block").assignment
        pm = build_partitioned_mesh(4, edges, assign, [m], [x, acc])
        # boundary nodes go to the lower rank (min-rank derivation), so
        # rank 1 must hold its left boundary node as halo
        layout = pm.local(1).layouts[id(nodes)]
        assert layout.halo_ids.size > 0

    def test_exchange_lists_symmetric(self):
        nodes, edges, m, x, acc = chain_mesh(20)
        assign = partition_set(20, 4, "block").assignment
        pm = build_partitioned_mesh(4, edges, assign, [m], [x, acc])
        for r in range(4):
            for sid in pm.local(r).layouts:
                layout = pm.local(r).layouts[sid]
                for p, idx in layout.recv.items():
                    peer = pm.local(p).layouts[sid]
                    assert r in peer.send
                    assert peer.send[r].shape == idx.shape

    def test_missing_set_assignment_rejected(self):
        nodes, edges, m, x, acc = chain_mesh(5)
        stray = op2.Dat(op2.Set(3, "stray"), 1)
        with pytest.raises(Exception, match="unreachable|assignment"):
            build_partitioned_mesh(2, edges, np.zeros(5, dtype=int), [m], [x, stray])

    def test_local_dat_values_match_global(self):
        nodes, edges, m, x, acc = chain_mesh(12)
        assign = partition_set(12, 3, "block").assignment
        pm = build_partitioned_mesh(3, edges, assign, [m], [x, acc])
        for r in range(3):
            rm = pm.local(r)
            layout = rm.layouts[id(nodes)]
            owned_vals = rm.local_dat(x).data[: layout.n_owned, 0]
            np.testing.assert_allclose(owned_vals, x.data[layout.owned_ids, 0])


class TestDistributedExecution:
    @pytest.mark.parametrize("nranks", [2, 3, 4])
    def test_matches_serial(self, nranks):
        ref_acc, ref_g = serial_reference(24)
        nodes, edges, m, x, acc = chain_mesh(24)
        g = op2.Global(1, 0.0)
        assign = partition_set(24, nranks, "block").assignment
        pm = build_partitioned_mesh(nranks, edges, assign, [m], [x, acc], [g])

        def main(comm):
            rm = pm.local(comm.rank)
            rm.par_loop(
                comm, K_EDGE_INC, edges,
                acc(op2.INC, m, 0), acc(op2.INC, m, 1),
                x(op2.READ, m, 0), x(op2.READ, m, 1),
            )
            rm.par_loop(comm, K_SQ, nodes, acc(op2.READ), g(op2.INC))
            return rm.gather_dat(comm, acc), rm.local_global(g).value

        out = run_spmd(nranks, main)
        gathered, gval = out[0]
        np.testing.assert_allclose(gathered, ref_acc, atol=1e-13)
        assert gval == pytest.approx(ref_g)

    def test_halo_exchange_counts_messages(self):
        nodes, edges, m, x, acc = chain_mesh(24)
        assign = partition_set(24, 4, "block").assignment
        pm = build_partitioned_mesh(4, edges, assign, [m], [x, acc])
        world = World(4)

        def main(comm):
            rm = pm.local(comm.rank)
            rm.par_loop(
                comm, K_EDGE_INC, edges,
                acc(op2.INC, m, 0), acc(op2.INC, m, 1),
                x(op2.READ, m, 0), x(op2.READ, m, 1),
            )

        run_spmd(4, main, world=world)
        total = world.total_counters()
        assert total.halo_exchanges > 0
        assert total.bytes_sent > 0

    def test_indirect_write_rejected(self):
        def k_bad(a):
            a[0] = 1.0

        K_BAD = op2.Kernel(k_bad, "k_bad")
        nodes, edges, m, x, acc = chain_mesh(8)
        assign = partition_set(8, 2, "block").assignment
        pm = build_partitioned_mesh(2, edges, assign, [m], [x, acc])

        def main(comm):
            pm.local(comm.rank).par_loop(comm, K_BAD, edges, acc(op2.WRITE, m, 0))

        with pytest.raises(RuntimeError, match="unsupported"):
            run_spmd(2, main)

    @given(
        n=st.integers(6, 40),
        nranks=st.integers(2, 4),
        method=st.sampled_from(["block", "greedy"]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_any_partition_matches_serial(self, n, nranks, method, seed):
        """Distributed results are partition-invariant."""
        ref_acc, _ = serial_reference(n)
        nodes, edges, m, x, acc = chain_mesh(n)
        if method == "greedy":
            assign = partition_set(n, nranks, "greedy", map_=m).assignment
        else:
            assign = partition_set(n, nranks, "block").assignment
        pm = build_partitioned_mesh(nranks, edges, assign, [m], [x, acc])

        def main(comm):
            rm = pm.local(comm.rank)
            rm.par_loop(
                comm, K_EDGE_INC, edges,
                acc(op2.INC, m, 0), acc(op2.INC, m, 1),
                x(op2.READ, m, 0), x(op2.READ, m, 1),
            )
            return rm.gather_dat(comm, acc)

        gathered = run_spmd(nranks, main)[0]
        np.testing.assert_allclose(gathered, ref_acc, atol=1e-12)
