"""Smaller behaviours not covered elsewhere."""

import time

import numpy as np
import pytest

from repro import op2, ops
from repro.common.counters import LoopRecord, PerfCounters, Timer
from repro.simmpi import run_spmd


class TestTimer:
    def test_accumulates_wall_time(self):
        rec = LoopRecord("k")
        with Timer(rec):
            time.sleep(0.01)
        with Timer(rec):
            time.sleep(0.01)
        assert rec.wall_seconds >= 0.02


class TestKernelVecSource:
    def test_source_available_after_first_use(self):
        def k(a, b):
            b[0] = a[0] + 1.0

        kern = op2.Kernel(k, "k_src_test")
        assert kern.vec_source is not None
        assert "k_src_test_vec" in kern.vec_source

    def test_hand_given_vec_func_has_no_source(self):
        def k(a, b):
            b[0] = a[0]

        def kv(a, b):
            b[:, 0] = a[:, 0]

        kern = op2.Kernel(k, "k_hand", vec_func=kv)
        assert kern.vec_func is kv
        assert kern.vec_source is None

    def test_repr(self):
        def k(a):
            a[0] = 0.0

        assert "flops=7" in repr(op2.Kernel(k, "k", flops_per_elem=7))


class TestSimmpiProbe:
    def test_probe_sees_pending_message(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("hi", 1, tag=9)
                comm.barrier()
                return None
            comm.barrier()
            seen = comm.probe(source=0, tag=9)
            missing = comm.probe(source=0, tag=10)
            comm.recv(0, 9)
            return seen, missing

        assert run_spmd(2, main)[1] == (True, False)


class TestFusionIntersect:
    def test_partial_overlap(self):
        from repro.ops.fusion import _intersect

        assert _intersect([(0, 10)], [(5, 20)]) == [(5, 10)]

    def test_disjoint_is_none(self):
        from repro.ops.fusion import _intersect

        assert _intersect([(0, 5)], [(5, 10)]) is None

    def test_multi_dim(self):
        from repro.ops.fusion import _intersect

        assert _intersect([(0, 4), (2, 8)], [(1, 9), (0, 5)]) == [(1, 4), (2, 5)]


class TestMeshIOWithAirfoil:
    def test_airfoil_mesh_roundtrip_runs(self, tmp_path):
        """A mesh written to the npz store reloads into a runnable app."""
        from repro.apps.airfoil import AirfoilApp, generate_mesh
        from repro.op2.io import read_mesh, write_mesh

        m = generate_mesh(6, 5)
        write_mesh(
            tmp_path / "mesh.npz",
            {"nodes": m.nodes, "edges": m.edges, "bedges": m.bedges, "cells": m.cells},
            {"edge2node": m.edge2node, "edge2cell": m.edge2cell,
             "bedge2node": m.bedge2node, "bedge2cell": m.bedge2cell,
             "cell2node": m.cell2node},
            {"x": m.x, "q": m.q, "bound": m.bound},
        )
        sets, maps, dats = read_mesh(tmp_path / "mesh.npz")
        assert sets["cells"].size == 30
        np.testing.assert_array_equal(maps["cell2node"].values, m.cell2node.values)
        np.testing.assert_allclose(dats["q"].data, m.q.data)


class TestDatRepr:
    def test_reprs_are_informative(self):
        s = op2.Set(3, "cells")
        d = op2.Dat(s, 4, name="q")
        m = op2.Map(s, s, 1, [[0], [1], [2]], "self_map")
        assert "cells" in repr(s)
        assert "q" in repr(d) and "dim=4" in repr(d)
        assert "self_map" in repr(m)
        g = op2.Global(1, 2.0, name="rms")
        assert "rms" in repr(g)
        blk = ops.Block(2, "grid")
        od = ops.Dat(blk, (2, 2), name="u")
        assert "grid" in repr(blk)
        assert "u" in repr(od)
        assert "S2D_5PT" in repr(ops.S2D_5PT)
        red = ops.Reduction("min", name="dt")
        assert "min" in repr(red)


class TestLoopChainRecordIsolation:
    def test_nested_records_both_capture(self):
        from repro.common.profiling import loop_chain_record

        s = op2.Set(3)
        d = op2.Dat(s, 1)

        def k(a):
            a[0] = 1.0

        K = op2.Kernel(k, "kk")
        with loop_chain_record() as outer:
            op2.par_loop(K, s, d(op2.WRITE))
            with loop_chain_record() as inner:
                op2.par_loop(K, s, d(op2.WRITE))
        assert len(outer) == 2
        assert len(inner) == 1
