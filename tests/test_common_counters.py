"""Performance-counter bookkeeping."""

from repro.common.counters import LoopRecord, PerfCounters


class TestLoopRecord:
    def test_bytes_moved_sums_read_and_write(self):
        rec = LoopRecord("k", bytes_read=100, bytes_written=30)
        assert rec.bytes_moved == 130

    def test_indirect_flag(self):
        assert not LoopRecord("k").is_indirect
        assert LoopRecord("k", indirect_reads=8).is_indirect

    def test_merge_accumulates(self):
        a = LoopRecord("k", invocations=1, iterations=10, flops=5, colours=2)
        b = LoopRecord("k", invocations=2, iterations=20, flops=7, colours=4)
        a.merge(b)
        assert a.invocations == 3
        assert a.iterations == 30
        assert a.flops == 12

    def test_merge_takes_max_colours(self):
        a = LoopRecord("k", colours=2)
        a.merge(LoopRecord("k", colours=5))
        assert a.colours == 5


class TestPerfCounters:
    def test_loop_creates_on_demand(self):
        c = PerfCounters()
        rec = c.loop("res_calc")
        assert rec is c.loop("res_calc")
        assert rec.name == "res_calc"

    def test_record_message(self):
        c = PerfCounters()
        c.record_message(128)
        c.record_message(64)
        assert c.messages_sent == 2
        assert c.bytes_sent == 192

    def test_record_halo_exchange(self):
        c = PerfCounters()
        c.record_halo_exchange(4, 1000)
        assert c.halo_exchanges == 1
        assert c.messages_sent == 4
        assert c.bytes_sent == 1000

    def test_merge_combines_loops_and_comm(self):
        a, b = PerfCounters(), PerfCounters()
        a.loop("k").iterations = 5
        b.loop("k").iterations = 7
        b.loop("other").iterations = 1
        b.record_message(10)
        a.merge(b)
        assert a.loop("k").iterations == 12
        assert "other" in a.loops
        assert a.bytes_sent == 10

    def test_reset_clears_everything(self):
        c = PerfCounters()
        c.loop("k").iterations = 5
        c.record_message(10)
        c.reset()
        assert not c.loops
        assert c.messages_sent == 0

    def test_summary_rows_in_insertion_order(self):
        c = PerfCounters()
        c.loop("b")
        c.loop("a")
        assert [r[0] for r in c.summary_rows()] == ["b", "a"]


class TestCountersScope:
    def test_scope_redirects_and_restores(self):
        from repro.common.profiling import active_counters, counters_scope

        outer = active_counters()
        mine = PerfCounters()
        with counters_scope(mine):
            assert active_counters() is mine
        assert active_counters() is outer

    def test_nested_scopes(self):
        from repro.common.profiling import active_counters, counters_scope

        c1, c2 = PerfCounters(), PerfCounters()
        with counters_scope(c1):
            with counters_scope(c2):
                assert active_counters() is c2
            assert active_counters() is c1
