"""Executing OP2 loops over SoA-stored dats (the runtime side of Fig 7)."""

import numpy as np
import pytest

from repro import op2
from repro.apps.airfoil import AirfoilApp, generate_mesh


def k_axpy(a, out):
    out[0] = 2.0 * a[0] + a[1]
    out[1] = a[0] - a[1]


K = op2.Kernel(k_axpy, "k_axpy")


class TestLayoutMechanics:
    def test_logical_view_preserved(self):
        s = op2.Set(4)
        d = op2.Dat(s, 2, np.arange(8, dtype=float))
        before = d.data.copy()
        d.convert_to_soa()
        np.testing.assert_array_equal(d.data, before)
        assert d.layout == "soa"
        # physical storage really is component-major
        assert d.data.base.shape == (2, 4)
        assert d.data.base[0, 1] == d.data[1, 0]

    def test_roundtrip(self):
        s = op2.Set(3)
        d = op2.Dat(s, 2, np.arange(6, dtype=float))
        before = d.data.copy()
        d.convert_to_soa()
        d.convert_to_aos()
        np.testing.assert_array_equal(d.data, before)
        assert d.data.flags["C_CONTIGUOUS"]

    def test_idempotent(self):
        s = op2.Set(3)
        d = op2.Dat(s, 2)
        d.convert_to_soa()
        d.convert_to_soa()
        assert d.layout == "soa"


class TestExecutionOnSoA:
    @pytest.mark.parametrize("backend", ["seq", "vec", "cuda"])
    def test_direct_loop_identical(self, backend):
        s = op2.Set(10)
        vals = np.random.default_rng(0).standard_normal((10, 2))
        a1 = op2.Dat(s, 2, vals)
        o1 = op2.Dat(s, 2)
        op2.par_loop(K, s, a1(op2.READ), o1(op2.WRITE), backend=backend)

        a2 = op2.Dat(s, 2, vals)
        o2 = op2.Dat(s, 2)
        a2.convert_to_soa()
        o2.convert_to_soa()
        op2.par_loop(K, s, a2(op2.READ), o2(op2.WRITE), backend=backend)
        np.testing.assert_array_equal(o2.data, o1.data)

    def test_full_airfoil_runs_on_soa_state(self):
        """The GPU-style layout conversion is transparent to the whole app."""
        rng = np.random.default_rng(4)

        def perturbed():
            m = generate_mesh(10, 8, jitter=0.1)
            m.q.data[:, 0] *= 1.0 + 0.05 * rng.random(m.cells.size)
            return m

        rng = np.random.default_rng(4)
        m1 = perturbed()
        rng = np.random.default_rng(4)
        m2 = perturbed()
        AirfoilApp(m1).run(3)
        for dat in (m2.q, m2.qold, m2.res, m2.x):
            dat.convert_to_soa()
        AirfoilApp(m2).run(3)
        np.testing.assert_array_equal(m2.q.data, m1.q.data)
