"""Shared fixtures and test utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import op2


@pytest.fixture(autouse=True)
def _clear_plan_cache():
    """Plans are cached by object identity; fresh per test."""
    from repro.op2.plan import clear_plan_cache

    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def line_mesh():
    """A 1-D chain mesh: N nodes, N-1 edges, useful for tiny OP2 tests."""

    def build(n: int = 10):
        nodes = op2.Set(n, "nodes")
        edges = op2.Set(n - 1, "edges")
        e2n = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n - 1)], "e2n")
        x = op2.Dat(nodes, 1, np.arange(n, dtype=float) + 1.0, name="x")
        return nodes, edges, e2n, x

    return build
