"""Shared fixtures and test utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import op2


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/* fixtures from the current translator output",
    )


@pytest.fixture
def golden(request):
    """Compare ``content`` against a committed fixture in tests/goldens/.

    Run ``pytest --update-goldens`` after an intentional codegen change to
    regenerate the fixtures, then review the diff like any other code.
    """
    from pathlib import Path

    goldens_dir = Path(__file__).parent / "goldens"
    update = request.config.getoption("--update-goldens")

    def check(name: str, content: str) -> None:
        path = goldens_dir / name
        if update:
            goldens_dir.mkdir(exist_ok=True)
            path.write_text(content)
            return
        assert path.exists(), (
            f"golden fixture {path} missing — run `pytest --update-goldens` "
            f"and commit the result"
        )
        expected = path.read_text()
        assert content == expected, (
            f"generated code for {name} differs from the committed golden; "
            f"if the change is intentional, run `pytest --update-goldens` "
            f"and review the fixture diff"
        )

    return check


@pytest.fixture(autouse=True)
def _clear_plan_cache():
    """Colouring plans and compiled loops are cached; fresh per test."""
    from repro.op2.execplan import clear_plan_cache as clear_op2
    from repro.ops.execplan import clear_plan_cache as clear_ops

    clear_op2()
    clear_ops()
    yield
    clear_op2()
    clear_ops()


@pytest.fixture(autouse=True)
def _disable_tracer():
    """Tracing is process-global; never let one test's tracer leak into another."""
    from repro.telemetry import tracer as _trace

    _trace.disable()
    yield
    _trace.disable()


@pytest.fixture
def line_mesh():
    """A 1-D chain mesh: N nodes, N-1 edges, useful for tiny OP2 tests."""

    def build(n: int = 10):
        nodes = op2.Set(n, "nodes")
        edges = op2.Set(n - 1, "edges")
        e2n = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n - 1)], "e2n")
        x = op2.Dat(nodes, 1, np.arange(n, dtype=float) + 1.0, name="x")
        return nodes, edges, e2n, x

    return build
