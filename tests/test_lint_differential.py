"""Differential property tests for the abstract interpreter.

Random kernels are generated as source, executed *concretely* against
recording proxies that trace every offset actually touched and every
dtype actually stored, and analysed *abstractly* through the lint IR.
The contracts under test:

* **soundness** — on the full grammar (branches, ``range`` loops), the
  proven offset sets over-approximate the concrete trace (``None``
  counts as "everything");
* **precision** — on the branch-free, loop-free, constant-offset
  subset, the proven sets equal the concrete trace exactly, and the
  propagated store dtypes equal NumPy's (NEP-50) concrete results.
"""

from __future__ import annotations

import ast

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.lint.abstract import W_FLOAT, W_INT, analyze_kernel


class Rec:
    """A dict-backed array stand-in that records every access."""

    def __init__(self, dtype=np.float64, span=9):
        rng = np.random.default_rng(0)
        self.values = {
            (i,): dtype(v)
            for i, v in zip(range(-span, span + 1),
                            rng.uniform(0.5, 2.0, 2 * span + 1))
        }
        if np.issubdtype(dtype, np.integer):
            self.values = {k: dtype(int(v) + 1) for k, v in self.values.items()}
        self.reads: set[tuple[int, ...]] = set()
        self.writes: set[tuple[int, ...]] = set()
        self.stored: list[tuple[tuple[int, ...], str]] = []

    @staticmethod
    def _key(k) -> tuple[int, ...]:
        return tuple(int(c) for c in (k if isinstance(k, tuple) else (k,)))

    def __getitem__(self, k):
        kk = self._key(k)
        self.reads.add(kk)
        return self.values[kk]

    def __setitem__(self, k, v):
        kk = self._key(k)
        self.writes.add(kk)
        self.stored.append((kk, np.asarray(v).dtype.name))
        self.values[kk] = v


# -- source generation --------------------------------------------------------

class Gen:
    def __init__(self, seed: int):
        self.rng = np.random.default_rng(seed)
        self.temps: list[str] = []

    def expr(self, depth: int, ops=("+", "-", "*"), calls=True) -> str:
        r = self.rng
        if depth <= 0 or r.random() < 0.3:
            kind = r.integers(0, 3)
            if kind == 0:
                return f"{r.uniform(0.25, 2.0):.3f}"
            if kind == 2 and self.temps:
                return str(r.choice(self.temps))
            return f"a[{r.integers(-2, 3)}]"
        if calls and r.random() < 0.15:
            f = "min" if r.random() < 0.5 else "max"
            return f"{f}({self.expr(depth - 1, ops, calls)}, " \
                   f"{self.expr(depth - 1, ops, calls)})"
        op = str(r.choice(list(ops)))
        return f"({self.expr(depth - 1, ops, calls)} {op} " \
               f"{self.expr(depth - 1, ops, calls)})"

    def straight(self, ops=("+", "-", "*"), calls=True) -> str:
        r = self.rng
        lines = ["def kernel(a, b):"]
        for i in range(int(r.integers(1, 5))):
            e = self.expr(int(r.integers(1, 3)), ops, calls)
            if r.random() < 0.5:
                t = f"t{i}"
                lines.append(f"    {t} = {e}")
                self.temps.append(t)
            else:
                lines.append(f"    b[{r.integers(-1, 2)}] = {e}")
        lines.append(f"    b[{r.integers(-1, 2)}] = "
                     + self.expr(2, ops, calls))
        return "\n".join(lines) + "\n"

    def full(self) -> str:
        r = self.rng
        lines = ["def kernel(a, b):", "    t0 = a[0]"]
        self.temps.append("t0")
        for i in range(1, int(r.integers(2, 5))):
            shape = r.random()
            if shape < 0.3:
                lines.append(f"    if {self.expr(1)} > 1.0:")
                lines.append(f"        b[{r.integers(-1, 2)}] = {self.expr(1)}")
                if r.random() < 0.5:
                    lines.append("    else:")
                    lines.append(f"        t0 = {self.expr(1)}")
            elif shape < 0.6:
                lo = int(r.integers(0, 3))
                hi = int(r.integers(lo, lo + 4))
                var = f"n{i}"
                delta = int(r.integers(-1, 2))
                idx = f"{var} + {delta}" if delta else var
                lines.append(f"    for {var} in range({lo}, {hi}):")
                lines.append(f"        t0 = t0 + a[{idx}]")
            elif shape < 0.8:
                t = f"t{i}"
                lines.append(f"    {t} = {self.expr(2)}")
                self.temps.append(t)
            else:
                lines.append(f"    b[{r.integers(-1, 2)}] = {self.expr(2)}")
        lines.append("    b[0] = t0")
        return "\n".join(lines) + "\n"


def _run(src: str, a: Rec, b: Rec) -> None:
    ns: dict = {}
    exec(compile(src, "<genkernel>", "exec"), ns)
    with np.errstate(all="ignore"):
        try:
            ns["kernel"](a, b)
        except ZeroDivisionError:
            assume(False)


def _analysis(src: str, a_dtype: str = "float64"):
    fndef = ast.parse(src).body[0]
    return analyze_kernel(fndef, {"a": a_dtype, "b": "float64"})


# -- the properties -----------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_abstract_extents_over_approximate_concrete(seed):
    src = Gen(seed).full()
    a, b = Rec(), Rec()
    _run(src, a, b)
    an = _analysis(src)
    proven_reads = an.params["a"].read_points()
    if proven_reads is not None:
        assert a.reads <= set(proven_reads), src
    proven_writes = an.params["b"].write_points()
    if proven_writes is not None:
        assert b.writes <= set(proven_writes), src


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_abstract_extents_exact_on_straight_line(seed):
    src = Gen(seed).straight()
    a, b = Rec(), Rec()
    _run(src, a, b)
    an = _analysis(src)
    assert an.complete, src
    assert set(an.params["a"].read_points()) == a.reads, src
    assert set(an.params["b"].write_points()) == b.writes, src
    assert an.params["a"].exact and an.params["b"].exact, src


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1),
       st.sampled_from(["float32", "float64", "int64"]))
def test_abstract_dtypes_match_numpy_on_straight_line(seed, a_dtype):
    src = Gen(seed).straight(ops=("+", "-", "*", "/"), calls=False)
    a, b = Rec(dtype=np.dtype(a_dtype).type), Rec()
    _run(src, a, b)
    an = _analysis(src, a_dtype)
    stores = [w for w in an.params["b"].writes if w.kind == "store"]
    assert len(stores) == len(b.stored), src
    for acc, (_, concrete) in zip(stores, b.stored):
        if acc.value_dtype in (None, W_INT, W_FLOAT):
            continue  # weak/unknown: no concrete claim made
        assert acc.value_dtype == concrete, (
            f"{src}\nabstract {acc.value_dtype} != numpy {concrete}"
        )
