"""Telemetry subsystem: tracer invariants, exporters, merging, report CLI.

Covers the PR-5 acceptance surface: span nesting is strictly LIFO (a
hypothesis property drives random well-nested and ill-nested action
sequences), exported Chrome traces validate against the schema checker, a
distributed Airfoil run (ranks 1-4) produces per-rank metrics that merge
like PerfCounters, checkpointed runs show checkpoint spans on every rank's
timeline, and the report CLI renders all of it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import op2, telemetry
from repro.common.counters import PerfCounters
from repro.common.errors import DescriptorViolation, TelemetryError
from repro.common.profiling import counters_scope
from repro.common.report import timing_report
from repro.telemetry import tracer as trace_mod
from repro.telemetry.__main__ import main as cli_main
from repro.telemetry.export import MetricsSnapshot
from repro.telemetry.report import load_trace, render_report
from repro.resilience.driver import run_resilient_spmd
from repro.resilience.jobs import AirfoilJob
from repro.verify import sanitized


def run_traced_loop(trc=None):
    """One tiny op2 loop executed under tracing; returns the tracer."""
    nodes = op2.Set(16, "nodes")
    x = op2.Dat(nodes, 1, np.arange(16, dtype=float), name="x")
    k = op2.Kernel(lambda u: None, name="touch",
                   vec_func=lambda u: np.multiply(u, 1.0, out=u))
    with telemetry.tracing() as t:
        op2.par_loop(k, nodes, x(op2.RW), backend="vec")
    return t


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        trc = telemetry.Tracer()
        with trc.span("work", "test", kernel="k1", n=4) as sp:
            assert sp.duration == 0.0  # still open
        events = trc.events()
        assert len(events) == 1
        ev = events[0]
        assert ev.name == "work" and ev.cat == "test"
        assert ev.attrs == {"kernel": "k1", "n": 4}
        assert ev.t1 is not None and ev.duration >= 0.0

    def test_nesting_depth_recorded(self):
        trc = telemetry.Tracer()
        with trc.span("outer"):
            with trc.span("inner"):
                pass
        by_name = {e.name: e for e in trc.events()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_end_without_open_span_raises(self):
        trc = telemetry.Tracer()
        sp = trc.begin("a")
        trc.end(sp)
        with pytest.raises(TelemetryError):
            trc.end(sp)

    def test_end_out_of_order_raises(self):
        trc = telemetry.Tracer()
        outer = trc.begin("outer")
        inner = trc.begin("inner")
        with pytest.raises(TelemetryError, match="innermost"):
            trc.end(outer)
        trc.end(inner)
        trc.end(outer)

    def test_ring_buffer_bounded(self):
        trc = telemetry.Tracer(ring_size=8)
        for i in range(20):
            trc.instant("tick", n=i)
        events = trc.events()
        assert len(events) == 8
        assert [e.attrs["n"] for e in events] == list(range(12, 20))
        assert trc.dropped_possible()

    def test_clear_keeps_open_spans(self):
        trc = telemetry.Tracer()
        sp = trc.begin("outer")
        trc.instant("x")
        trc.clear()
        assert trc.events() == []
        assert trc.open_spans() == [sp]
        trc.end(sp)

    def test_enable_disable_idempotent(self):
        assert telemetry.active() is None
        t1 = trace_mod.enable()
        t2 = trace_mod.enable()
        assert t1 is t2 is telemetry.active()
        assert trace_mod.disable() is t1
        assert telemetry.active() is None
        assert trace_mod.disable() is None

    def test_tracing_restores_previous(self):
        outer = trace_mod.enable()
        with telemetry.tracing() as inner:
            assert telemetry.active() is inner
            assert inner is not outer
        assert telemetry.active() is outer
        trace_mod.disable()

    def test_invalid_ring_size(self):
        with pytest.raises(TelemetryError):
            telemetry.Tracer(ring_size=0)


class TestNestingProperty:
    """Hypothesis: every exit must match the innermost open span."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=40))
    def test_well_nested_sequences_always_succeed(self, actions):
        # action k>0: open a span; action 0: close the innermost (if any)
        trc = telemetry.Tracer()
        model: list = []
        for a in actions:
            if a == 0 and model:
                trc.end(model.pop())
            else:
                model.append(trc.begin(f"s{a}"))
        assert [s.name for s in trc.open_spans()] == [s.name for s in model]
        while model:
            trc.end(model.pop())
        events = trc.events()
        # every recorded span closed after it opened, and nesting depth
        # equals the number of still-open ancestors at begin time
        for ev in events:
            assert ev.t1 >= ev.t0
            assert ev.depth >= 0

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),  # open spans
        st.data(),
    )
    def test_closing_non_innermost_raises(self, depth, data):
        trc = telemetry.Tracer()
        spans = [trc.begin(f"s{i}") for i in range(depth)]
        victim = data.draw(st.integers(min_value=0, max_value=depth - 2))
        with pytest.raises(TelemetryError):
            trc.end(spans[victim])
        # the stack is untouched by the failed close: unwinding still works
        for sp in reversed(spans):
            trc.end(sp)
        assert trc.open_spans() == []


class TestExporters:
    def test_chrome_trace_validates(self, tmp_path):
        trc = run_traced_loop()
        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(path, trc.events(), counters=PerfCounters())
        obj = json.loads(path.read_text())
        telemetry.validate_chrome_trace(obj)
        phases = {e["ph"] for e in obj["traceEvents"]}
        assert "X" in phases and "M" in phases
        assert obj["otherData"]["counters"]["plan_hits"] == 0

    def test_validate_rejects_malformed(self):
        with pytest.raises(TelemetryError):
            telemetry.validate_chrome_trace([])
        with pytest.raises(TelemetryError):
            telemetry.validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(TelemetryError, match="'ph'"):
            telemetry.validate_chrome_trace(
                {"traceEvents": [{"name": "a", "ph": "Q", "pid": 0}]}
            )
        with pytest.raises(TelemetryError, match="'dur'"):
            telemetry.validate_chrome_trace(
                {"traceEvents": [
                    {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": -2.0}
                ]}
            )

    def test_open_spans_not_exported(self):
        trc = telemetry.Tracer()
        trc.begin("open_forever")
        trc.instant("tick")
        obj = telemetry.chrome_trace(trc.events())
        names = [e["name"] for e in obj["traceEvents"] if e["ph"] != "M"]
        assert names == ["tick"]

    def test_jsonl_roundtrip(self, tmp_path):
        trc = run_traced_loop()
        snap = MetricsSnapshot.from_events(trc.events())
        path = tmp_path / "trace.jsonl"
        telemetry.write_jsonl(path, trc.events(), metrics=snap)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["type"] == "metrics"
        assert any(r["type"] == "span" and r["name"] == "par_loop" for r in records)
        # the loader understands the jsonl form too (metrics trailer skipped)
        events = load_trace(path)
        assert all(e["kind"] in ("span", "instant") for e in events)
        assert any(e["name"] == "par_loop" for e in events)

    def test_load_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("")
        with pytest.raises(TelemetryError):
            load_trace(bad)
        bad.write_text("not json at all")
        with pytest.raises(TelemetryError):
            load_trace(bad)


class TestMetricsSnapshot:
    def test_quantiles_and_merge(self):
        a = MetricsSnapshot()
        b = MetricsSnapshot()
        sa = a.spans.setdefault("k", telemetry.SpanStats())
        sb = b.spans.setdefault("k", telemetry.SpanStats())
        for d in (0.1, 0.2, 0.3):
            sa.add(d)
        for d in (0.4, 0.5):
            sb.add(d)
        a.instants["plan_miss"] = 2
        b.instants["plan_miss"] = 3
        a.ranks = {0}
        b.ranks = {1}
        a.merge(b)
        st_ = a.spans["k"]
        assert st_.count == 5
        assert st_.max_seconds == pytest.approx(0.5)
        assert st_.total_seconds == pytest.approx(1.5)
        assert a.instants["plan_miss"] == 5
        assert a.ranks == {0, 1}
        q = st_.quantiles()
        assert q["p50"] == pytest.approx(0.3)
        assert q["p99"] == pytest.approx(0.5)

    @pytest.mark.parametrize("nranks", [1, 2, 3, 4])
    def test_per_rank_merge_distributed_airfoil(self, nranks, tmp_path):
        job = AirfoilJob(nranks, 4, nx=10, ny=6)
        with telemetry.tracing() as trc:
            run_resilient_spmd(nranks, job, ckpt_dir=tmp_path, frequency=None)
        events = trc.events()
        ranks = sorted({e.rank for e in events})
        assert ranks == list(range(nranks))
        per_rank = [
            MetricsSnapshot.from_events(events, rank=r) for r in ranks
        ]
        for r, snap in zip(ranks, per_rank):
            assert snap.ranks == {r}
            assert snap.spans["par_loop"].count > 0
        merged = per_rank[0]
        for snap in per_rank[1:]:
            merged.merge(snap)
        total = MetricsSnapshot.from_events(events)
        assert merged.ranks == set(ranks)
        assert merged.spans["par_loop"].count == total.spans["par_loop"].count
        assert merged.spans["par_loop"].total_seconds == pytest.approx(
            total.spans["par_loop"].total_seconds
        )
        assert merged.instants == total.instants
        if nranks > 1:
            assert merged.spans["halo_exchange"].count == total.spans["halo_exchange"].count


class TestInstrumentation:
    def test_interpreted_and_compiled_op2_spans(self):
        trc = run_traced_loop()
        spans = [e for e in trc.events() if isinstance(e, telemetry.SpanEvent)]
        par = [s for s in spans if s.name == "par_loop"]
        assert par, "no par_loop span recorded"
        attrs = par[0].attrs
        assert attrs["kernel"] == "touch"
        assert attrs["set"] == "nodes"
        assert "x:rw" in attrs["descriptors"]
        # second run under the same tracer hits the compiled plan
        instants = [e.name for e in trc.events() if isinstance(e, telemetry.InstantEvent)]
        assert "plan_miss" in instants

    def test_ops_loop_span(self):
        from repro import ops

        block = ops.Block(1, "line")
        d = ops.Dat(block, 8, name="u")

        def fill(u):
            u[0] = 1.0

        with telemetry.tracing() as trc:
            ops.par_loop(fill, block, [(0, 8)], d(ops.WRITE),
                         backend="seq", name="fill")
        par = [e for e in trc.events() if e.name == "par_loop"]
        assert par and par[0].cat == "ops"
        assert par[0].attrs["kernel"] == "fill"

    def test_verify_violation_instant(self):
        nodes = op2.Set(8, "nodes")
        src = op2.Dat(nodes, 1, np.ones(8), name="src")
        dst = op2.Dat(nodes, 1, np.zeros(8), name="dst")

        def bad(s, d):
            s[0] = 9.0

        k = op2.Kernel(bad, name="writes_read")
        with telemetry.tracing() as trc:
            with sanitized():
                with pytest.raises(DescriptorViolation):
                    op2.par_loop(k, nodes, src(op2.READ), dst(op2.WRITE), backend="seq")
        viol = [e for e in trc.events() if e.name == "verify_violation"]
        assert len(viol) == 1
        assert viol[0].attrs["kind"] == "read-arg-written"
        assert trc.open_spans() == [], "par_loop span leaked open on error"

    def test_checkpoint_spans_on_every_rank(self, tmp_path):
        job = AirfoilJob(4, 6, nx=10, ny=6)
        with telemetry.tracing() as trc:
            run_resilient_spmd(4, job, ckpt_dir=tmp_path, frequency=10)
        events = trc.events()
        for rank in range(4):
            names = {e.name for e in events if e.rank == rank}
            assert "par_loop" in names
            assert "halo_exchange" in names
            assert "checkpoint_save" in names, f"rank {rank} has no checkpoint span"
            assert "checkpoint_enter" in names

    def test_fault_and_restart_instants(self, tmp_path):
        from repro.resilience.faults import FaultPlan

        plan = FaultPlan().kill(1, at_loop=12)
        job = AirfoilJob(2, 5, nx=10, ny=6)
        with telemetry.tracing() as trc:
            res = run_resilient_spmd(
                2, job, ckpt_dir=tmp_path, frequency=8, plan=plan
            )
        assert res.restarts == 1
        names = [e.name for e in trc.events()]
        assert "fault_injected" in names
        assert "restart" in names

    def test_disabled_tracer_records_nothing(self):
        assert telemetry.active() is None
        nodes = op2.Set(8, "nodes")
        x = op2.Dat(nodes, 1, np.zeros(8), name="x")
        k = op2.Kernel(lambda u: None, name="noop",
                       vec_func=lambda u: np.multiply(u, 1.0, out=u))
        op2.par_loop(k, nodes, x(op2.RW), backend="vec")
        assert telemetry.active() is None


class TestReportAndCLI:
    def _trace_file(self, tmp_path, nranks=2):
        job = AirfoilJob(nranks, 4, nx=10, ny=6)
        with telemetry.tracing() as trc:
            res = run_resilient_spmd(nranks, job, ckpt_dir=tmp_path, frequency=8)
        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(path, trc.events(), counters=res.counters)
        return path

    def test_render_report_sections(self, tmp_path):
        path = self._trace_file(tmp_path)
        text = render_report(load_trace(path))
        assert "per-rank timeline" in text
        assert "per-kernel breakdown" in text
        assert "critical path" in text
        assert "halo-wait" in text
        assert "adt_calc" in text

    def test_cli_report(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert cli_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-rank timeline" in out
        assert "critical path" in out

    def test_cli_rank_filter_and_top(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert cli_main(["report", str(path), "--rank", "1", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 rank(s)" in out

    def test_cli_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        bad.write_text("garbage")
        assert cli_main(["report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_empty(self):
        assert render_report([]) == "trace contains no events"


class TestTimingReportIntegration:
    def _counters(self):
        c = PerfCounters()
        for name, secs in (("zeta", 0.5), ("alpha", 2.0), ("mid", 1.0)):
            rec = c.loop(name)
            rec.invocations = 1
            rec.iterations = 10
            rec.wall_seconds = secs
        return c

    def test_rows_sorted_by_name(self):
        lines = timing_report(self._counters()).splitlines()
        names = [ln.split()[0] for ln in lines[2:5]]
        assert names == ["alpha", "mid", "zeta"]

    def test_top_selects_by_time_renders_by_name(self):
        lines = timing_report(self._counters(), top=2).splitlines()
        names = [ln.split()[0] for ln in lines[2:4]]
        assert names == ["alpha", "mid"]  # zeta (cheapest) dropped

    def test_telemetry_section_when_tracing(self):
        trc = run_traced_loop()
        trace_mod.enable(trc)
        try:
            with counters_scope(PerfCounters()) as c:
                text = timing_report(c)
        finally:
            trace_mod.disable()
        assert "telemetry:" in text
        assert "par_loop" in text

    def test_no_telemetry_section_when_off(self):
        assert "telemetry:" not in timing_report(self._counters())

    def test_summary_none_when_off(self):
        assert telemetry.summary() is None
