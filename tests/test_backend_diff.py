"""Cross-backend differential harness: every backend computes the same thing.

The harness (``repro.verify.diff``) runs each proxy app once per backend,
compares final states against the ``seq`` reference — bitwise where the
loop chain is order-independent, ULP/tolerance-bounded where INC scatters
and reductions legitimately re-associate — and localises any disagreement
to the first diverging loop.
"""

import numpy as np
import pytest

from repro.apps.airfoil.app import AirfoilApp
from repro.apps.airfoil.mesh import generate_mesh
from repro.apps.cloverleaf import CloverLeafApp, clover_bm_state
from repro.apps.cloverleaf.app import DistributedCloverLeafApp
from repro.apps.multiblock.app import MultiBlockDiffusion
from repro.ops.decomp import DecomposedBlock
from repro.simmpi import run_spmd
from repro.verify import (
    BackendDivergence,
    Tolerance,
    diff_backends,
    first_divergence,
    max_ulp_diff,
    trace_scope,
)

#: INC scatters and reductions re-associate across backends; everything
#: else must agree to the last bit (atol soaks up near-zero residual sums)
REASSOC = Tolerance(ulp=64, rtol=1e-12, atol=1e-12)


class TestUlpDistance:
    def test_identical_is_zero(self):
        a = np.array([1.0, -2.5, 0.0, np.inf])
        assert max_ulp_diff(a, a.copy()) == 0.0

    def test_adjacent_floats_are_one_ulp(self):
        a = np.array([1.0, -1.0, 1e-300])
        b = np.nextafter(a, np.inf)
        assert max_ulp_diff(a, b) == 1.0

    def test_signed_zero_is_zero_ulp(self):
        assert max_ulp_diff(np.array([0.0]), np.array([-0.0])) == 0.0

    def test_crosses_zero_monotonically(self):
        # distance through zero = steps to zero from both sides
        a = np.array([np.nextafter(0.0, 1.0)])
        b = np.array([np.nextafter(0.0, -1.0)])
        assert max_ulp_diff(a, b) == 2.0

    def test_shape_mismatch_is_inf(self):
        assert max_ulp_diff(np.zeros(3), np.zeros(4)) == np.inf

    def test_nan_pattern_mismatch_is_inf(self):
        assert max_ulp_diff(np.array([np.nan]), np.array([1.0])) == np.inf

    def test_matching_nans_agree(self):
        a = np.array([np.nan, 2.0])
        assert max_ulp_diff(a, a.copy()) == 0.0


class TestTolerance:
    def test_default_is_bitwise(self):
        t = Tolerance()
        assert t.arrays_agree(np.array([1.0]), np.array([1.0]))
        assert not t.arrays_agree(np.array([1.0]), np.array([np.nextafter(1.0, 2)]))

    def test_ulp_bound(self):
        t = Tolerance(ulp=2)
        a = np.array([1.0])
        assert t.arrays_agree(a, np.nextafter(a, np.inf))
        assert not t.arrays_agree(a, np.array([1.0 + 1e-9]))

    def test_rtol_atol(self):
        t = Tolerance(rtol=1e-10)
        assert t.arrays_agree(np.array([1.0]), np.array([1.0 + 1e-12]))
        assert not t.arrays_agree(np.array([1.0]), np.array([1.001]))


class TestTraceScope:
    def test_records_loops_and_written_args(self):
        def run():
            app = AirfoilApp(nx=4, ny=3, backend="vec")
            app.run(1)

        with trace_scope() as trace:
            run()
        # one outer iteration: save_soln + RK_STEPS * (adt, res, bres, update)
        assert trace.loop_names[0] == "save_soln"
        assert trace.loop_names.count("res_calc") == AirfoilApp.RK_STEPS
        save = trace.records[0]
        assert set(save.written) == {"q_old"}
        update = trace.records[trace.loop_names.index("update")]
        assert {"q", "res", "rms"} <= set(update.written)

    def test_captures_post_loop_state(self):
        # qold is written by save_soln; the recorded copy must equal q
        with trace_scope() as trace:
            app = AirfoilApp(nx=4, ny=3, backend="vec")
            app.run(1)
        save = trace.records[0]
        np.testing.assert_array_equal(
            save.written["q_old"], app.mesh.qold.data
        )

    def test_first_divergence_localises(self):
        def run(poison: bool):
            app = AirfoilApp(nx=4, ny=3, jitter=0.1, backend="vec")
            with trace_scope() as trace:
                app.iteration()
                if poison:
                    # corrupt res mid-run: the *next* iteration's loops see it
                    app.mesh.res.data += 1e-3
                app.iteration()
            return trace

        good, bad = run(False), run(True)
        div = first_divergence(good, bad, REASSOC)
        assert div is not None
        # the poison lands between iterations: localised at the loop whose
        # post-state snapshot first includes it (update writes res last)
        assert div.loop == "update"
        assert div.arg == "res"
        assert first_divergence(good, run(False), REASSOC) is None


class TestAirfoilBackends:
    @staticmethod
    def _run(backend):
        app = AirfoilApp(generate_mesh(8, 6, jitter=0.1), backend=backend)
        app.run(2)
        m = app.mesh
        return {"q": m.q.data, "qold": m.qold.data, "res": m.res.data,
                "rms": np.asarray([app.rms.value])}

    def test_all_backends_agree_with_seq(self):
        report = diff_backends(
            self._run, ["seq", "vec", "openmp", "cuda"], tol=REASSOC
        )
        report.assert_agree()

    def test_injected_divergence_is_localised(self):
        def run(backend):
            app = AirfoilApp(generate_mesh(8, 6, jitter=0.1), backend="vec")
            app.run(1)
            if backend == "broken":
                # corrupt the state between outer iterations: every later
                # loop computes from the poisoned q
                app.mesh.q.data *= 1.0 + 1e-6
            app.run(1)
            m = app.mesh
            return {"q": m.q.data, "res": m.res.data}

        report = diff_backends(run, ["seq", "broken"], tol=REASSOC)
        assert not report.agree
        with pytest.raises(BackendDivergence) as exc:
            report.assert_agree()
        div = exc.value.divergence
        assert div is not None
        # the poison lands after iteration 1's last loop ('update'), so
        # that loop's post-state snapshot is the earliest diverging one
        assert div.loop == "update"
        assert div.arg == "q"
        assert "q" in report.comparisons["broken"].mismatched


class TestCloverLeafBackends:
    @staticmethod
    def _run(backend):
        app = CloverLeafApp(nx=10, ny=8, backend=backend)
        summary = app.run(2)
        st = app.st
        out = {k: np.asarray([v]) for k, v in summary.items()}
        out.update(
            density=st.density0.interior, energy=st.energy0.interior,
            xvel=st.xvel0.interior, yvel=st.yvel0.interior,
        )
        return out

    def test_backends_agree_with_seq(self):
        report = diff_backends(self._run, ["seq", "vec", "tiled"], tol=REASSOC)
        report.assert_agree()


class TestMultiblockBackends:
    @staticmethod
    def _run(backend):
        import repro.ops.parloop as opl

        initial = np.add.outer(np.arange(16.0), np.sin(np.arange(8.0)))
        mb = MultiBlockDiffusion(8, 8, initial=initial)
        prev = opl.get_default_backend()
        opl.set_default_backend(backend)
        try:
            mb.run(4)
        finally:
            opl.set_default_backend(prev)
        return {"u": mb.solution()}

    def test_backends_agree_bitwise(self):
        # pure WRITE loops: no scatter reassociation, so bitwise holds
        report = diff_backends(self._run, ["seq", "vec", "tiled"])
        report.assert_agree()


class TestRankCounts:
    """Distributed runs vs serial: final state only (rank threads share the
    process-wide observer, so loop traces interleave and are not compared)."""

    def test_airfoil_rank_counts_agree(self):
        def run(label):
            mesh = generate_mesh(10, 8, jitter=0.1)
            app = AirfoilApp(mesh)
            if label == "serial":
                rms = app.run(2)
                return {"q": mesh.q.data, "rms": np.asarray([rms])}
            nranks = int(label)
            pm = app.build_partitioned(nranks, "block")

            def main(comm):
                rms = app.run_distributed(comm, pm, 2)
                return rms, pm.local(comm.rank).gather_dat(comm, mesh.q)

            rms, q = run_spmd(nranks, main)[0]
            return {"q": q, "rms": np.asarray([rms])}

        report = diff_backends(
            run, ["serial", "1", "2", "3"],
            reference="serial", tol=REASSOC, trace=False,
        )
        report.assert_agree()

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_cloverleaf_rank_counts_agree(self, nranks):
        serial = CloverLeafApp(nx=12, ny=8)
        s_ser = serial.run(2)

        gstate = clover_bm_state(12, 8)
        dec = DecomposedBlock(nranks, gstate.block, gstate.all_dats,
                              global_size=(12, 8))

        def main(comm):
            app = DistributedCloverLeafApp(comm, dec, gstate)
            s = app.run(2)
            return s, app.gather_field("density0")

        s_dist, dens = run_spmd(nranks, main)[0]
        for key in s_ser:
            assert s_dist[key] == pytest.approx(s_ser[key], rel=1e-12), key
        assert REASSOC.arrays_agree(dens, serial.st.density0.interior)
