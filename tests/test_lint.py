"""repro.lint: corpus, emitters, baseline, CLI, and the strict translator gate."""

import json
from pathlib import Path

import pytest

from repro.common.access import Access, validate_argument_access
from repro.common.errors import AccessDeclarationError, TranslatorError
from repro.lint import RULES, Severity, lint_many, lint_path
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    unused_entries,
)
from repro.lint.cli import main as lint_main
from repro.lint.emit import emit_json, emit_sarif, emit_text

CORPUS = Path(__file__).parent / "lint_corpus"
REPO_BASELINE = Path(__file__).parents[1] / "lint_baseline.json"

APPS = [
    "repro.apps.airfoil.app",
    "repro.apps.cloverleaf.app",
    "repro.apps.sod.app",
    "repro.apps.hydra.app",
]


def marker_line(path: Path, code: str) -> int:
    """The 1-based line carrying the ``# <- OPLxxx`` marker."""
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        if f"# <- {code}" in line:
            return i
    raise AssertionError(f"{path} has no marker for {code}")


class TestCorpus:
    """Every seeded bug is caught with the exact code, line and severity."""

    @pytest.mark.parametrize(
        "stem, code, severity",
        [
            ("opl001_read_assigned", "OPL001", Severity.ERROR),
            ("opl002_inc_nonadditive", "OPL002", Severity.ERROR),
            ("opl003_write_read_first", "OPL003", Severity.ERROR),
            ("opl004_outside_stencil", "OPL004", Severity.ERROR),
            ("opl005_unused_arg", "OPL005", Severity.WARNING),
            ("opl006_arity_mismatch", "OPL006", Severity.ERROR),
            ("opl007_min_on_dat", "OPL007", Severity.ERROR),
            ("opl201_computed_offset", "OPL201", Severity.ERROR),
            ("opl202_neighbour_rw", "OPL202", Severity.WARNING),
            ("opl203_overdeclared_stencil", "OPL203", Severity.NOTE),
            ("opl301_narrowing_store", "OPL301", Severity.WARNING),
            ("opl302_int_division", "OPL302", Severity.WARNING),
            ("opl303_rank_mismatch", "OPL303", Severity.WARNING),
            ("opl101_dead_write", "OPL101", Severity.WARNING),
            ("opl102_carried_state", "OPL102", Severity.NOTE),
            ("opl103_redundant_halo", "OPL103", Severity.NOTE),
            ("opl900_unliftable", "OPL900", Severity.WARNING),
        ],
    )
    def test_seeded_bug_caught(self, stem, code, severity):
        path = CORPUS / f"{stem}.py"
        result = lint_path(path)
        expected_line = marker_line(path, code)
        hits = [d for d in result.diagnostics if d.code == code]
        assert hits, f"{code} not reported for {path.name}"
        assert any(d.line == expected_line for d in hits), (
            f"{code} reported at {[d.line for d in hits]}, "
            f"marker is on line {expected_line}"
        )
        for d in hits:
            assert d.severity is severity

    def test_seeded_files_report_no_other_codes(self):
        # each corpus file must stay a minimal reproducer of its one code
        # (OPL101 may legitimately also fire on the cyclic wrap-around)
        for path in sorted(CORPUS.glob("opl*.py")):
            code = f"OPL{path.stem[3:6]}"
            others = {
                d.code for d in lint_path(path).diagnostics if d.code != code
            }
            assert not others, f"{path.name} also reports {others}"

    def test_known_good_file_is_fully_clean(self):
        result = lint_path(CORPUS / "good_saxpy.py")
        assert result.diagnostics == []
        assert result.n_sites == 1
        assert result.n_kernels == 1


class TestBundledAppsClean:
    """Acceptance: the four apps lint clean against the repo baseline."""

    def test_zero_nonbaselined_findings(self):
        result = lint_many(APPS)
        apply_baseline(result, load_baseline(REPO_BASELINE))
        active = result.active(Severity.WARNING)
        assert active == [], "\n".join(d.format() for d in active)
        # the analyser actually saw the apps (not a silent no-op)
        assert result.n_sites >= 60
        assert result.n_kernels >= 60
        assert result.n_chains >= 8

    def test_no_stale_baseline_entries(self):
        result = lint_many(APPS)
        entries = load_baseline(REPO_BASELINE)
        assert unused_entries(result, entries) == []

    def test_checkpoint_tables_cover_iteration_chains(self):
        result = lint_many(APPS)
        names = set(result.checkpoint_tables)
        assert any("iteration" in n for n in names)
        table = next(t for n, t in result.checkpoint_tables.items()
                     if "app.AirfoilApp.iteration" in n)
        assert "units" in table and "K_SAVE_SOLN" in table


class TestEmitters:
    def _result(self):
        return lint_path(CORPUS / "opl001_read_assigned.py")

    def test_text_contains_location_code_and_hint(self):
        text = emit_text(self._result())
        assert "OPL001 error" in text
        assert "opl001_read_assigned.py:8" in text
        assert "hint:" in text

    def test_json_roundtrip(self):
        doc = json.loads(emit_json(self._result()))
        assert doc["summary"]["error"] == 1
        (d,) = doc["diagnostics"]
        assert (d["code"], d["line"], d["severity"]) == ("OPL001", 8, "error")

    def test_sarif_structure(self):
        """SARIF 2.1.0 structural smoke test (no external schema dep)."""
        doc = json.loads(emit_sarif(self._result()))
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == list(RULES)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error",
            )
        (res,) = run["results"]
        assert res["ruleId"] == "OPL001"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("opl001_read_assigned.py")
        assert loc["region"]["startLine"] == 8
        assert rule_ids[res["ruleIndex"]] == "OPL001"

    def test_sarif_marks_suppressions(self):
        result = self._result()
        apply_baseline(result, [
            {"code": "OPL001", "module": "*", "reason": "corpus"},
        ])
        (res,) = json.loads(emit_sarif(result))["runs"][0]["results"]
        assert res["suppressions"][0]["justification"] == "corpus"


class TestBaseline:
    def test_matching_entry_suppresses(self):
        result = lint_path(CORPUS / "opl001_read_assigned.py")
        n = apply_baseline(result, [{
            "code": "OPL001", "module": "opl001_read_assigned.py",
            "loop": "scale", "dat": "q", "reason": "seeded",
        }])
        assert n == 1
        assert result.active(Severity.ERROR) == []
        assert result.counts()["suppressed"] == 1

    def test_non_matching_entry_is_reported_stale(self):
        result = lint_path(CORPUS / "opl001_read_assigned.py")
        entries = [{"code": "OPL004", "module": "nope.py", "reason": "x"}]
        assert apply_baseline(result, entries) == 0
        assert unused_entries(result, entries) == entries

    def test_reason_is_mandatory(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps(
            {"version": 1, "suppressions": [{"code": "OPL001"}]}
        ))
        with pytest.raises(BaselineError, match="reason"):
            load_baseline(p)


class TestCLI:
    def test_clean_run_exits_zero(self, capsys):
        rc = lint_main([str(CORPUS / "good_saxpy.py")])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_findings_exit_one(self, capsys):
        rc = lint_main([str(CORPUS / "opl001_read_assigned.py")])
        assert rc == 1
        assert "OPL001" in capsys.readouterr().out

    def test_baseline_restores_exit_zero(self, tmp_path, capsys):
        b = tmp_path / "b.json"
        b.write_text(json.dumps({"version": 1, "suppressions": [
            {"code": "OPL001", "module": "opl001_read_assigned.py",
             "reason": "seeded corpus bug"},
        ]}))
        rc = lint_main([str(CORPUS / "opl001_read_assigned.py"),
                        "--baseline", str(b)])
        assert rc == 0
        assert "baselined: seeded corpus bug" in capsys.readouterr().out

    def test_fail_on_warning_gates_notes_out(self):
        assert lint_main([str(CORPUS / "opl102_carried_state.py"),
                          "--fail-on", "warning"]) == 0
        assert lint_main([str(CORPUS / "opl005_unused_arg.py"),
                          "--fail-on", "warning"]) == 1
        assert lint_main([str(CORPUS / "opl005_unused_arg.py"),
                          "--fail-on", "never"]) == 0

    def test_sarif_output_file(self, tmp_path):
        out = tmp_path / "report.sarif"
        rc = lint_main([str(CORPUS / "opl001_read_assigned.py"),
                        "-f", "sarif", "-o", str(out)])
        assert rc == 1
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"]

    def test_unknown_module_exits_two(self, capsys):
        assert lint_main(["no.such.module"]) == 2
        assert "cannot locate" in capsys.readouterr().err


STRICT_BAD_APP = '''\
import repro.op2 as op2


def bad_kernel(a, b):
    b[0] = a[0]
    a[0] = 0.0


def run(cells, q, out):
    op2.par_loop(bad_kernel, cells, q(op2.READ), out(op2.WRITE))
'''


class TestTranslatorStrictMode:
    """Acceptance: strict mode refuses codegen for a READ-written kernel."""

    def test_strict_refuses_read_written_kernel(self, tmp_path):
        from repro.translator.driver import translate_app

        app = tmp_path / "bad_app.py"
        app.write_text(STRICT_BAD_APP)
        with pytest.raises(TranslatorError, match="OPL001"):
            translate_app(app, tmp_path / "gen", strict=True)
        assert not (tmp_path / "gen" / "translation_manifest.json").exists()

    def test_non_strict_still_translates(self, tmp_path):
        from repro.translator.driver import translate_app

        app = tmp_path / "bad_app.py"
        app.write_text(STRICT_BAD_APP)
        result = translate_app(app, tmp_path / "gen")
        assert (tmp_path / "gen" / "translation_manifest.json").exists()
        assert len(result.sites) == 1

    def test_strict_honours_baseline(self, tmp_path):
        from repro.translator.driver import translate_app

        app = tmp_path / "bad_app.py"
        app.write_text(STRICT_BAD_APP)
        b = tmp_path / "b.json"
        b.write_text(json.dumps({"version": 1, "suppressions": [
            {"code": "OPL001", "module": "bad_app.py",
             "reason": "known, tracked elsewhere"},
        ]}))
        translate_app(app, tmp_path / "gen", strict=True, baseline=b)
        assert (tmp_path / "gen" / "translation_manifest.json").exists()

    def test_strict_cli_flag(self, tmp_path, capsys):
        from repro.translator.__main__ import main as translator_main

        app = tmp_path / "bad_app.py"
        app.write_text(STRICT_BAD_APP)
        rc = translator_main([str(app), str(tmp_path / "gen"), "--lint"])
        assert rc == 1
        assert "OPL001" in capsys.readouterr().err

    def test_strict_rejects_unliftable_sites(self, tmp_path):
        from repro.translator.driver import translate_app

        app = tmp_path / "starred.py"
        app.write_text(
            "import repro.op2 as op2\n\n\n"
            "def run(cells, k, descs):\n"
            "    op2.par_loop(k, cells, *descs)\n"
        )
        with pytest.raises(TranslatorError, match="OPL900"):
            translate_app(app, tmp_path / "gen", strict=True)


class TestAccessDeclarationValidation:
    """Satellite: MIN/MAX rejected on non-global args at declaration time."""

    def test_helper_rejects_min_on_dat(self):
        with pytest.raises(AccessDeclarationError) as exc:
            validate_argument_access(
                Access.MIN, is_global=False, dat="q", loop="res_calc",
                arg_index=2,
            )
        err = exc.value
        assert (err.dat, err.access, err.loop, err.arg_index) == (
            "q", "MIN", "res_calc", 2,
        )
        assert "res_calc" in str(err) and "'q'" in str(err)

    def test_helper_allows_reductions_on_globals(self):
        for mode in (Access.MIN, Access.MAX, Access.INC, Access.READ):
            validate_argument_access(mode, is_global=True, dat="g")

    def test_op2_direct_dat_min_rejected_at_declaration(self):
        from repro import op2

        s = op2.Set(4, "cells")
        d = op2.Dat(s, 1, name="q")
        with pytest.raises(AccessDeclarationError):
            d(op2.MIN)

    def test_op2_indirect_dat_max_rejected_at_declaration(self):
        # previously only *direct* MIN/MAX was caught; indirect slipped
        # through to fail late (or never)
        from repro import op2

        cells = op2.Set(4, "cells")
        edges = op2.Set(3, "edges")
        e2c = op2.Map(edges, cells, 1, [[0], [1], [2]], "e2c")
        d = op2.Dat(cells, 1, name="q")
        with pytest.raises(AccessDeclarationError):
            d(op2.MAX, e2c, 0)

    def test_op2_global_min_still_allowed(self):
        import numpy as np

        from repro import op2

        s = op2.Set(3, "cells")
        d = op2.Dat(s, 1, [[1.0], [2.0], [3.0]], name="q")
        g = op2.Global(1, [10.0], name="lo")

        def kmin(q, lo):
            lo[0] = min(lo[0], q[0])

        op2.par_loop(op2.Kernel(kmin, "kmin"), s, d(op2.READ), g(op2.MIN))
        assert np.allclose(g.data, [1.0])

    def test_op2_loop_time_recheck_names_loop(self):
        from repro import op2
        from repro.op2.args import Arg

        s = op2.Set(2, "cells")
        d = op2.Dat(s, 1, name="q")
        rogue = Arg(access=Access.MIN, dat=d)  # bypasses Dat.__call__

        def k(q):
            pass

        with pytest.raises(AccessDeclarationError) as exc:
            op2.par_loop(op2.Kernel(k, "rogue_loop"), s, rogue)
        assert exc.value.loop == "rogue_loop"
        assert exc.value.arg_index == 0

    def test_ops_dat_min_rejected_at_declaration(self):
        from repro import ops

        blk = ops.Block(1, "b")
        d = ops.Dat(blk, 8, name="t")
        with pytest.raises(AccessDeclarationError):
            d(ops.MIN)
