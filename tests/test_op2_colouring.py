"""Two-level colouring: correctness of the race-avoidance plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2
from repro.common.config import swap
from repro.op2.color import colour_blocks, colour_elements, verify_colouring
from repro.op2.plan import build_plan, clear_plan_cache


class TestElementColouring:
    def test_chain_needs_two_colours(self):
        # elements i and i+1 share node i+1
        targets = np.asarray([[0, 1], [1, 2], [2, 3], [3, 4]])
        colours, n = colour_elements(targets, 4)
        assert n == 2
        assert verify_colouring(colours, targets, 4)

    def test_independent_elements_one_colour(self):
        targets = np.asarray([[0], [1], [2]])
        colours, n = colour_elements(targets, 3)
        assert n == 1

    def test_star_needs_n_colours(self):
        # every element touches node 0: total conflict
        targets = np.zeros((5, 1), dtype=np.int64)
        colours, n = colour_elements(targets, 5)
        assert n == 5

    def test_empty(self):
        colours, n = colour_elements(np.zeros((0, 2), dtype=np.int64), 0)
        assert n == 0 and colours.size == 0

    def test_no_targets_single_colour(self):
        colours, n = colour_elements(np.zeros((4, 0), dtype=np.int64), 4)
        assert n == 1

    @given(
        n_elems=st.integers(1, 40),
        arity=st.integers(1, 3),
        n_targets=st.integers(1, 12),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_valid_colouring(self, n_elems, arity, n_targets, seed):
        """No two same-coloured elements ever share a target."""
        rng = np.random.default_rng(seed)
        # draw each column from a disjoint target range so rows never
        # contain duplicate targets (which the verifier would flag)
        targets = np.stack(
            [rng.integers(k * n_targets, (k + 1) * n_targets, n_elems) for k in range(arity)],
            axis=1,
        )
        colours, n = colour_elements(targets, n_elems)
        assert (colours >= 0).all()
        assert colours.max() + 1 == n
        assert verify_colouring(colours, targets, n_elems)


class TestBlockColouring:
    def test_blocks_sharing_targets_differ(self):
        # 4 elements, 2 blocks; element 1 (block 0) and 2 (block 1) share node 2
        block_of = np.asarray([0, 0, 1, 1])
        targets = np.asarray([[0, 1], [1, 2], [2, 3], [3, 4]])
        colours, n = colour_blocks(block_of, targets, 2)
        assert colours[0] != colours[1]
        assert n == 2

    def test_disjoint_blocks_share_colour(self):
        block_of = np.asarray([0, 0, 1, 1])
        targets = np.asarray([[0], [1], [2], [3]])
        colours, n = colour_blocks(block_of, targets, 2)
        assert n == 1


class TestPlan:
    def _race_mesh(self, n=64, block_size=8):
        nodes = op2.Set(n + 1)
        edges = op2.Set(n)
        m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n)])
        acc = op2.Dat(nodes, 1)
        args = [acc(op2.INC, m, 0), acc(op2.INC, m, 1)]
        return edges, args, block_size

    def test_plan_structure(self):
        edges, args, bs = self._race_mesh()
        plan = build_plan(edges, args, block_size=bs)
        assert plan.n_blocks == 8
        assert plan.n_block_colours >= 2
        # all elements covered exactly once across colours
        all_elems = np.concatenate(
            [plan.elements_of_colour(c) for c in range(plan.n_block_colours)]
        )
        assert sorted(all_elems.tolist()) == list(range(64))

    def test_blocks_of_same_colour_are_race_free(self):
        edges, args, bs = self._race_mesh()
        plan = build_plan(edges, args, block_size=bs)
        m = args[0].map
        for c in range(plan.n_block_colours):
            elems = plan.elements_of_colour(c)
            # group per block and check cross-block target disjointness
            blocks = {}
            for e in elems:
                blocks.setdefault(plan.block_of[e], set()).update(m.values[e])
            seen = set()
            for tgt in blocks.values():
                assert not (seen & tgt)
                seen |= tgt

    def test_plan_cached(self):
        edges, args, bs = self._race_mesh()
        p1 = build_plan(edges, args, block_size=bs)
        p2 = build_plan(edges, args, block_size=bs)
        assert p1 is p2

    def test_different_block_size_different_plan(self):
        edges, args, _ = self._race_mesh()
        p1 = build_plan(edges, args, block_size=8)
        p2 = build_plan(edges, args, block_size=16)
        assert p1 is not p2
        assert p2.n_blocks == 4

    def test_no_race_args_single_colour(self):
        s = op2.Set(10)
        d = op2.Dat(s, 1)
        plan = build_plan(s, [d(op2.RW)], block_size=4)
        assert plan.n_block_colours == 1

    def test_config_block_size_used(self):
        edges, args, _ = self._race_mesh()
        clear_plan_cache()
        with swap(plan_block_size=16):
            plan = build_plan(edges, args)
        assert plan.block_size == 16
