"""Two-level colouring: correctness of the race-avoidance plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2
from repro.common.config import swap
from repro.op2.color import colour_blocks, colour_elements, verify_colouring
from repro.op2.plan import build_plan, clear_plan_cache


class TestElementColouring:
    def test_chain_needs_two_colours(self):
        # elements i and i+1 share node i+1
        targets = np.asarray([[0, 1], [1, 2], [2, 3], [3, 4]])
        colours, n = colour_elements(targets, 4)
        assert n == 2
        assert verify_colouring(colours, targets, 4)

    def test_independent_elements_one_colour(self):
        targets = np.asarray([[0], [1], [2]])
        colours, n = colour_elements(targets, 3)
        assert n == 1

    def test_star_needs_n_colours(self):
        # every element touches node 0: total conflict
        targets = np.zeros((5, 1), dtype=np.int64)
        colours, n = colour_elements(targets, 5)
        assert n == 5

    def test_empty(self):
        colours, n = colour_elements(np.zeros((0, 2), dtype=np.int64), 0)
        assert n == 0 and colours.size == 0

    def test_no_targets_single_colour(self):
        colours, n = colour_elements(np.zeros((4, 0), dtype=np.int64), 4)
        assert n == 1

    @given(
        n_elems=st.integers(1, 40),
        arity=st.integers(1, 3),
        n_targets=st.integers(1, 12),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_valid_colouring(self, n_elems, arity, n_targets, seed):
        """No two same-coloured elements ever share a target."""
        rng = np.random.default_rng(seed)
        # draw each column from a disjoint target range so rows never
        # contain duplicate targets (which the verifier would flag)
        targets = np.stack(
            [rng.integers(k * n_targets, (k + 1) * n_targets, n_elems) for k in range(arity)],
            axis=1,
        )
        colours, n = colour_elements(targets, n_elems)
        assert (colours >= 0).all()
        assert colours.max() + 1 == n
        assert verify_colouring(colours, targets, n_elems)


class TestBlockColouring:
    def test_blocks_sharing_targets_differ(self):
        # 4 elements, 2 blocks; element 1 (block 0) and 2 (block 1) share node 2
        block_of = np.asarray([0, 0, 1, 1])
        targets = np.asarray([[0, 1], [1, 2], [2, 3], [3, 4]])
        colours, n = colour_blocks(block_of, targets, 2)
        assert colours[0] != colours[1]
        assert n == 2

    def test_disjoint_blocks_share_colour(self):
        block_of = np.asarray([0, 0, 1, 1])
        targets = np.asarray([[0], [1], [2], [3]])
        colours, n = colour_blocks(block_of, targets, 2)
        assert n == 1


class TestPlan:
    def _race_mesh(self, n=64, block_size=8):
        nodes = op2.Set(n + 1)
        edges = op2.Set(n)
        m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(n)])
        acc = op2.Dat(nodes, 1)
        args = [acc(op2.INC, m, 0), acc(op2.INC, m, 1)]
        return edges, args, block_size

    def test_plan_structure(self):
        edges, args, bs = self._race_mesh()
        plan = build_plan(edges, args, block_size=bs)
        assert plan.n_blocks == 8
        assert plan.n_block_colours >= 2
        # all elements covered exactly once across colours
        all_elems = np.concatenate(
            [plan.elements_of_colour(c) for c in range(plan.n_block_colours)]
        )
        assert sorted(all_elems.tolist()) == list(range(64))

    def test_blocks_of_same_colour_are_race_free(self):
        edges, args, bs = self._race_mesh()
        plan = build_plan(edges, args, block_size=bs)
        m = args[0].map
        for c in range(plan.n_block_colours):
            elems = plan.elements_of_colour(c)
            # group per block and check cross-block target disjointness
            blocks = {}
            for e in elems:
                blocks.setdefault(plan.block_of[e], set()).update(m.values[e])
            seen = set()
            for tgt in blocks.values():
                assert not (seen & tgt)
                seen |= tgt

    def test_plan_cached(self):
        edges, args, bs = self._race_mesh()
        p1 = build_plan(edges, args, block_size=bs)
        p2 = build_plan(edges, args, block_size=bs)
        assert p1 is p2

    def test_different_block_size_different_plan(self):
        edges, args, _ = self._race_mesh()
        p1 = build_plan(edges, args, block_size=8)
        p2 = build_plan(edges, args, block_size=16)
        assert p1 is not p2
        assert p2.n_blocks == 4

    def test_no_race_args_single_colour(self):
        s = op2.Set(10)
        d = op2.Dat(s, 1)
        plan = build_plan(s, [d(op2.RW)], block_size=4)
        assert plan.n_block_colours == 1

    def test_config_block_size_used(self):
        edges, args, _ = self._race_mesh()
        clear_plan_cache()
        with swap(plan_block_size=16):
            plan = build_plan(edges, args)
        assert plan.block_size == 16


def _conflict_degrees(targets: np.ndarray) -> np.ndarray:
    """Per element, how many other elements share at least one target."""
    n = targets.shape[0]
    by_target: dict[int, set[int]] = {}
    for e in range(n):
        for t in targets[e]:
            by_target.setdefault(int(t), set()).add(e)
    deg = np.zeros(n, dtype=np.int64)
    for e in range(n):
        neighbours = set()
        for t in targets[e]:
            neighbours |= by_target[int(t)]
        deg[e] = len(neighbours - {e})
    return deg


@st.composite
def _target_matrices(draw):
    n_elems = draw(st.integers(1, 30))
    arity = draw(st.integers(1, 3))
    n_targets = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    # disjoint per-column ranges: no duplicate targets within a row
    return np.stack(
        [rng.integers(k * n_targets, (k + 1) * n_targets, n_elems) for k in range(arity)],
        axis=1,
    )


class TestColouringProperties:
    @given(targets=_target_matrices())
    @settings(max_examples=60, deadline=None)
    def test_no_same_colour_conflicts(self, targets):
        n = targets.shape[0]
        colours, n_colours = colour_elements(targets, n)
        assert verify_colouring(colours, targets, n)

    @given(targets=_target_matrices())
    @settings(max_examples=60, deadline=None)
    def test_colour_count_bounded_by_max_degree(self, targets):
        """Greedy first-fit never needs more than max conflict degree + 1."""
        n = targets.shape[0]
        _, n_colours = colour_elements(targets, n)
        assert n_colours <= int(_conflict_degrees(targets).max()) + 1

    @given(targets=_target_matrices(), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_block_colouring_separates_conflicting_blocks(self, targets, seed):
        n = targets.shape[0]
        rng = np.random.default_rng(seed)
        n_blocks = int(rng.integers(1, n + 1))
        block_of = np.sort(rng.integers(0, n_blocks, n))
        colours, n_colours = colour_blocks(block_of, targets, n_blocks)
        assert n_colours >= 1
        # same-coloured blocks must have disjoint target sets
        for c in range(n_colours):
            seen: set[int] = set()
            for b in np.nonzero(colours == c)[0]:
                tgts = set(targets[block_of == b].ravel().tolist())
                assert not (seen & tgts)
                seen |= tgts


class TestSparseTargetIds:
    """Regression: colouring must not allocate O(max target id) memory.

    Targets are densified first, so astronomically large ids (global node
    numbers from a petascale mesh, say) cost O(unique ids), not O(max id).
    """

    def test_huge_target_ids(self):
        targets = np.asarray([[10**15], [10**15], [999], [10**15 + 7]])
        colours, n = colour_elements(targets, 4)
        assert n == 2
        assert colours[0] != colours[1]
        assert verify_colouring(colours, targets, 4)

    def test_huge_ids_block_colouring(self):
        block_of = np.asarray([0, 0, 1, 1])
        targets = np.asarray([[10**12, 1], [1, 10**15], [10**15, 3], [3, 10**18]])
        colours, n = colour_blocks(block_of, targets, 2)
        assert colours[0] != colours[1]

    def test_sparse_ids_match_dense_equivalent(self):
        rng = np.random.default_rng(11)
        dense = rng.integers(0, 9, size=(40, 2))
        # strictly monotone relabelling preserves the conflict structure
        relabel = np.sort(rng.choice(10**14, size=9, replace=False))
        sparse = relabel[dense]
        c_dense, n_dense = colour_elements(dense, 40)
        c_sparse, n_sparse = colour_elements(sparse, 40)
        np.testing.assert_array_equal(c_dense, c_sparse)
        assert n_dense == n_sparse
