"""The C-style OP2 API surface (source-compatibility layer)."""

import numpy as np
import pytest

from repro.common.errors import APIError
from repro.op2.capi import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_WRITE,
    op_arg_dat,
    op_arg_gbl,
    op_decl_dat,
    op_decl_gbl,
    op_decl_map,
    op_decl_set,
    op_par_loop,
)


def edge_inc(a, b, xa, xb):
    a[0] += xb[0]
    b[0] += xa[0]


class TestDeclarations:
    def test_decl_set(self):
        s = op_decl_set(10, "cells")
        assert s.size == 10 and s.name == "cells"

    def test_decl_dat_dtype_strings(self):
        s = op_decl_set(3, "s")
        d = op_decl_dat(s, 2, "double", np.zeros((3, 2)), "q")
        assert d.dtype == np.float64
        f = op_decl_dat(s, 1, "float", np.zeros((3, 1)), "qs")
        assert f.dtype == np.float32

    def test_decl_dat_unknown_type(self):
        s = op_decl_set(3, "s")
        with pytest.raises(APIError, match="type string"):
            op_decl_dat(s, 1, "quad", np.zeros((3, 1)), "q")

    def test_decl_gbl(self):
        g = op_decl_gbl(0.0, 1, "double", "rms")
        assert g.value == 0.0


class TestArgs:
    def test_dim_mismatch_caught(self):
        s = op_decl_set(3, "s")
        d = op_decl_dat(s, 2, "double", np.zeros((3, 2)), "q")
        with pytest.raises(APIError, match="dim"):
            op_arg_dat(d, -1, OP_ID, 4, "double", OP_READ)

    def test_direct_via_minus_one(self):
        s = op_decl_set(3, "s")
        d = op_decl_dat(s, 2, "double", np.zeros((3, 2)), "q")
        arg = op_arg_dat(d, -1, OP_ID, 2, "double", OP_READ)
        assert arg.is_direct


class TestCStyleLoop:
    def test_full_airfoil_style_loop(self):
        nodes = op_decl_set(5, "nodes")
        edges = op_decl_set(4, "edges")
        e2n = op_decl_map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3], [3, 4]], "e2n")
        x = op_decl_dat(nodes, 1, "double", np.arange(5.0).reshape(-1, 1), "x")
        acc = op_decl_dat(nodes, 1, "double", np.zeros((5, 1)), "acc")

        op_par_loop(
            edge_inc, "edge_inc", edges,
            op_arg_dat(acc, 0, e2n, 1, "double", OP_INC),
            op_arg_dat(acc, 1, e2n, 1, "double", OP_INC),
            op_arg_dat(x, 0, e2n, 1, "double", OP_READ),
            op_arg_dat(x, 1, e2n, 1, "double", OP_READ),
        )
        np.testing.assert_allclose(acc.data[:, 0], [1, 2, 4, 6, 3])

    def test_gbl_reduction(self):
        s = op_decl_set(4, "s")
        v = op_decl_dat(s, 1, "double", np.ones((4, 1)), "v")
        g = op_decl_gbl(0.0, 1, "double", "total")

        def summing(x, t):
            t[0] += x[0]

        op_par_loop(summing, "summing", s,
                    op_arg_dat(v, -1, OP_ID, 1, "double", OP_READ),
                    op_arg_gbl(g, 1, "double", OP_INC))
        assert g.value == 4.0
