"""Translator end-to-end over the real application sources (paper Fig 1)."""

import inspect

import pytest

import repro.apps.airfoil.app as airfoil_app
import repro.apps.cloverleaf.app as clover_app
import repro.apps.hydra.app as hydra_app
from repro.translator import parse_app_source, translate_app


class TestAirfoilSource:
    @pytest.fixture(scope="class")
    def sites(self):
        return parse_app_source(inspect.getsource(airfoil_app))

    def test_finds_serial_and_distributed_loops(self, sites):
        kernels = [s.kernel for s in sites]
        # the serial chain names its five kernels
        for k in ("K_SAVE_SOLN", "K_ADT_CALC", "K_RES_CALC", "K_BRES_CALC", "K_UPDATE"):
            assert any(k in name for name in kernels), k

    def test_res_calc_args_lifted(self, sites):
        res = next(s for s in sites if "K_RES_CALC" in s.kernel)
        assert len(res.args) == 8
        assert res.args[0].access == "READ"
        assert res.args[0].map == "m.edge2node"
        incs = [a for a in res.args if a.access == "INC"]
        assert len(incs) == 2

    def test_direct_loops_classified(self, sites):
        save = next(s for s in sites if "K_SAVE_SOLN" in s.kernel)
        assert not save.has_indirection


class TestHydraSource:
    def test_loop_count_reflects_app_size(self):
        """Hydra's source has far more loop sites than Airfoil's."""
        hydra_sites = parse_app_source(inspect.getsource(hydra_app))
        airfoil_sites = parse_app_source(inspect.getsource(airfoil_app))
        assert len(hydra_sites) > len(airfoil_sites)

    def test_multigrid_loops_found(self):
        sites = parse_app_source(inspect.getsource(hydra_app))
        kernels = " ".join(s.kernel for s in sites)
        assert "K_MG_RESTRICT" in kernels
        assert "K_MG_PROLONG" in kernels


class TestCloverLeafSource:
    def test_ops_loops_found(self):
        sites = parse_app_source(inspect.getsource(clover_app))
        # the driver routes through self._loop -> ops.par_loop; the direct
        # ops.par_loop call site inside _loop is what the translator sees
        assert any(s.api == "ops" for s in sites)


class TestFullTranslation:
    def test_translate_airfoil_all_targets(self, tmp_path):
        src = tmp_path / "airfoil_app.py"
        src.write_text(inspect.getsource(airfoil_app))
        result = translate_app(src, tmp_path / "gen")
        # python + omp + cuda + mpi + cl + opencl-host files per loop
        per_loop = 6
        assert len(result.files) == len(result.sites) * per_loop + 1  # + manifest
        manifest = (tmp_path / "gen" / "translation_manifest.json").read_text()
        assert "K_RES_CALC" in manifest
