"""Seeded inefficiency: the declared stencil is wider than the kernel needs.

Offset (1,) is declared but provably never accessed: the halo exchange it
forces moves bytes no kernel reads.
"""

import repro.ops as ops

S_RIGHT = ops.Stencil(1, [(0,), (1,)], name="right")


def copy(a, b):
    b[0] = a[0]


def run(block, a, b):
    ops.par_loop(copy, block, [(0, 10)], a(ops.READ, S_RIGHT), b(ops.WRITE))  # <- OPL203
