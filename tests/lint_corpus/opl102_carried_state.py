"""Seeded pattern: state read before any write (the checkpoint save set)."""

import repro.op2 as op2


def advance(q, qnew):
    qnew[0] = q[0] * 0.5


def writeback(qnew, q):
    q[0] = qnew[0]


def chain(cells, q, qnew):
    op2.par_loop(advance, cells, q(op2.READ), qnew(op2.WRITE))  # <- OPL102
    op2.par_loop(writeback, cells, qnew(op2.READ), q(op2.WRITE))
