"""Seeded bug: the kernel reads a neighbour of a dataset it also writes.

Every offset is declared, so OPL004 is silent; but a[1] may already hold
this sweep's updated value depending on traversal order.
"""

import repro.ops as ops

S_RIGHT = ops.Stencil(1, [(0,), (1,)], name="right")


def smooth(a):
    a[0] = 0.5 * (a[0] + a[1])  # <- OPL202


def run(block, a):
    ops.par_loop(smooth, block, [(0, 10)], a(ops.RW, S_RIGHT))
