"""Seeded bug: a READ-declared argument is assigned by the kernel."""

import repro.op2 as o2


def scale(q, res):
    res[0] = q[0] * 2.0
    q[0] = 0.0  # <- OPL001


def run(cells, q, res):
    o2.par_loop(scale, cells, q(o2.READ), res(o2.WRITE))
