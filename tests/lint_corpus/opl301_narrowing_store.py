"""Seeded bug: a float64 value is silently truncated into a float32 dat."""

import numpy as np

import repro.ops as ops


def downcast(a, b):
    b[0] = a[0] * 0.5  # <- OPL301


def run(block):
    a = ops.Dat(block, 10, dtype=np.float64, name="a")
    b = ops.Dat(block, 10, dtype=np.float32, name="b")
    ops.par_loop(downcast, block, [(0, 10)], a(ops.READ), b(ops.WRITE))
