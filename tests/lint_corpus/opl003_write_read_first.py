"""Seeded bug: a WRITE-declared argument observes its old value first."""

import repro.op2 as op2


def fill(src, dst):
    t = dst[0]  # <- OPL003
    dst[0] = src[0] + t


def run(cells, src, dst):
    op2.par_loop(fill, cells, src(op2.READ), dst(op2.WRITE))
