"""Seeded bug: a written value is clobbered before any loop reads it."""

import repro.op2 as op2


def produce(a):
    a[0] = 1.0


def clobber(a):
    a[0] = 2.0


def chain(cells, d):
    op2.par_loop(produce, cells, d(op2.WRITE))  # <- OPL101
    op2.par_loop(clobber, cells, d(op2.WRITE))
