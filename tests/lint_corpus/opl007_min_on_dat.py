"""Seeded bug: MIN access declared on a plain dat, not a Global/Reduction."""

import repro.op2 as op2


def minimum(a, m):
    m.min(a[0])


def run(cells, a, m):
    op2.par_loop(minimum, cells, a(op2.READ), m(op2.MIN))  # <- OPL007
