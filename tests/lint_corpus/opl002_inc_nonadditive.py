"""Seeded bug: an INC-declared argument is plainly stored, not incremented."""

from repro import op2


def accumulate(x, total):
    total[0] = x[0]  # <- OPL002


def run(edges, x, total, edge2cell):
    op2.par_loop(accumulate, edges, x(op2.READ), total(op2.INC, edge2cell, 0))
