"""Seeded bug: descriptors forwarded with *args — invisible to the planner."""

import repro.op2 as op2


def run(cells, kernel, descriptors):
    op2.par_loop(kernel, cells, *descriptors)  # <- OPL900
