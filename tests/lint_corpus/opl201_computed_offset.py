"""Seeded bug: a loop-computed index provably leaves the declared stencil.

The offset is never a syntactic constant, so the OPL004 check cannot see
it; the interval domain proves ``n`` ranges over {0, 1} and offset (1,)
is outside the declared centre stencil.
"""

import repro.ops as ops

S_CENTRE = ops.Stencil(1, [(0,)], name="centre")


def gather(a, b):
    acc = 0.0
    for n in range(2):
        acc = acc + a[n]  # <- OPL201
    b[0] = acc


def run(block, a, b):
    ops.par_loop(gather, block, [(0, 10)], a(ops.READ, S_CENTRE), b(ops.WRITE))
