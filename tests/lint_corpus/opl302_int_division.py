"""Seeded bug: true division of integers feeds an integer store.

Python's ``/`` produces a float that the int32 store truncates; C codegen
would compute an integer division instead — the backends diverge.
"""

import numpy as np

import repro.ops as ops


def ratio(n, d, out):
    out[0] = n[0] / d[0]  # <- OPL302


def run(block):
    n = ops.Dat(block, 10, dtype=np.int32, name="n")
    d = ops.Dat(block, 10, dtype=np.int32, name="d")
    out = ops.Dat(block, 10, dtype=np.int32, name="out")
    ops.par_loop(ratio, block, [(0, 10)],
                 n(ops.READ), d(ops.READ), out(ops.WRITE))
