"""Seeded bug: a declared argument the kernel never touches."""

import repro.op2 as op2


def copy(a, b, extra):
    b[0] = a[0]


def run(cells, a, b, c):
    op2.par_loop(copy, cells, a(op2.READ), b(op2.WRITE), c(op2.READ))  # <- OPL005
