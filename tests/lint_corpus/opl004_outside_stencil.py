"""Seeded bug: the kernel reads offset (1,) but declares the centre stencil."""

import repro.ops as ops

S_CENTRE = ops.Stencil(1, [(0,)], name="centre")


def diffuse(a, b):
    b[0] = a[0] + a[1]  # <- OPL004


def run(block, a, b):
    ops.par_loop(diffuse, block, [(0, 10)], a(ops.READ, S_CENTRE), b(ops.WRITE))
