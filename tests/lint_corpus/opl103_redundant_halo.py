"""Seeded pattern: two halo-freshening reads with no interleaving write."""

import repro.op2 as op2


def gather_sum(x, out):
    out[0] = x[0] + x[1]


def gather_diff(x, out):
    out[0] = x[0] - x[1]


def chain(edges, x, e2n, a, b):
    op2.par_loop(gather_sum, edges, x(op2.READ, e2n, 0), a(op2.WRITE))
    op2.par_loop(gather_diff, edges, x(op2.READ, e2n, 0), b(op2.WRITE))  # <- OPL103
