"""Seeded bug: one descriptor for a two-parameter kernel."""

import repro.op2 as op2


def two_args(a, b):
    b[0] = a[0]


def run(cells, a):
    op2.par_loop(two_args, cells, a(op2.READ))  # <- OPL006
