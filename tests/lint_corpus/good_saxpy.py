"""Known-good: every declaration matches the kernel body exactly."""

import repro.op2 as op2


def saxpy(x, y):
    y[0] = y[0] + 2.0 * x[0]


def run(cells, x, y):
    op2.par_loop(saxpy, cells, x(op2.READ), y(op2.RW))
