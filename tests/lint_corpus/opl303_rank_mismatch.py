"""Seeded bug: a 1-D subscript on a dat declared with a 2-D stencil."""

import repro.ops as ops

S_CENTRE2 = ops.Stencil(2, [(0, 0)], name="centre2")


def flatten(a, b):
    b[0, 0] = a[0]  # <- OPL303


def run(block, a, b):
    ops.par_loop(flatten, block, [(0, 10), (0, 10)],
                 a(ops.READ, S_CENTRE2), b(ops.WRITE))
