"""The in-process MPI simulator: p2p, collectives, topology, counters."""

import numpy as np
import pytest

from repro.simmpi import CartComm, DeadlockError, World, dims_create, run_spmd


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        assert run_spmd(2, main)[1] == {"a": 7}

    def test_numpy_payloads_are_copied(self):
        def main(comm):
            if comm.rank == 0:
                data = np.arange(4.0)
                comm.send(data, 1)
                data[:] = -1  # must not affect the receiver
                return None
            return comm.recv(0)

        np.testing.assert_array_equal(run_spmd(2, main)[1], np.arange(4.0))

    def test_tag_matching(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("late", 1, tag=5)
                comm.send("early", 1, tag=3)
                return None
            first = comm.recv(0, tag=3)
            second = comm.recv(0, tag=5)
            return first, second

        assert run_spmd(2, main)[1] == ("early", "late")

    def test_nonblocking_roundtrip(self):
        def main(comm):
            other = 1 - comm.rank
            req_s = comm.isend(comm.rank * 10, other)
            req_r = comm.irecv(other)
            req_s.wait()
            return req_r.wait()

        assert run_spmd(2, main) == [10, 0]

    def test_sendrecv(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        assert run_spmd(3, main) == [2, 0, 1]

    def test_deadlock_detection(self):
        def main(comm):
            # nobody ever sends: must raise, not hang
            return comm.recv(source=1 - comm.rank, timeout=1.5)

        with pytest.raises(RuntimeError, match="DeadlockError|failed"):
            run_spmd(2, main)

    def test_invalid_destination(self):
        def main(comm):
            comm.send(1, dest=99)

        with pytest.raises(RuntimeError):
            run_spmd(2, main)


class TestCollectives:
    def test_bcast(self):
        def main(comm):
            data = {"k": [1, 2]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert all(r == {"k": [1, 2]} for r in run_spmd(3, main))

    def test_gather(self):
        def main(comm):
            return comm.gather(comm.rank**2, root=0)

        out = run_spmd(4, main)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_allgather(self):
        def main(comm):
            return comm.allgather(comm.rank + 1)

        assert run_spmd(3, main) == [[1, 2, 3]] * 3

    def test_scatter(self):
        def main(comm):
            payloads = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(payloads, root=0)

        assert run_spmd(4, main) == [0, 10, 20, 30]

    def test_allreduce_sum_deterministic_order(self):
        def main(comm):
            return comm.allreduce(float(comm.rank + 1), op="sum")

        assert run_spmd(4, main) == [10.0] * 4

    @pytest.mark.parametrize("op,expect", [("min", 0), ("max", 3), ("prod", 0)])
    def test_allreduce_ops(self, op, expect):
        def main(comm):
            return comm.allreduce(comm.rank, op=op)

        assert run_spmd(4, main) == [expect] * 4

    def test_allreduce_array(self):
        def main(comm):
            return comm.allreduce(np.asarray([comm.rank, 1.0]))

        out = run_spmd(3, main)
        np.testing.assert_array_equal(out[0], [3.0, 3.0])

    def test_alltoall(self):
        def main(comm):
            return comm.alltoall([comm.rank * 10 + d for d in range(comm.size)])

        out = run_spmd(3, main)
        assert out[1] == [1, 11, 21]

    def test_barrier_completes(self):
        def main(comm):
            comm.barrier()
            return comm.rank

        assert run_spmd(4, main) == [0, 1, 2, 3]

    def test_unknown_reduce_op(self):
        def main(comm):
            return comm.allreduce(1, op="xor")

        with pytest.raises(RuntimeError):
            run_spmd(2, main)

    def test_neighbor_exchange(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.neighbor_exchange({right: comm.rank, left: comm.rank})
            return got[left], got[right]

        out = run_spmd(4, main)
        assert out[0] == (3, 1)


class TestWorld:
    def test_single_rank_runs_inline(self):
        def main(comm):
            return comm.allreduce(5)

        assert run_spmd(1, main) == [5]

    def test_rank_args(self):
        def main(comm, base, extra):
            return base + extra

        assert run_spmd(2, main, 100, rank_args=[(1,), (2,)]) == [101, 102]

    def test_counters_capture_messages(self):
        world = World(2)

        def main(comm):
            comm.send(np.zeros(16), 1 - comm.rank)
            comm.recv(1 - comm.rank)

        run_spmd(2, main, world=world)
        total = world.total_counters()
        assert total.messages_sent == 2
        assert total.bytes_sent == 2 * 16 * 8

    def test_failing_rank_reports_not_hangs(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, main)


class TestDimsCreate:
    def test_perfect_square(self):
        assert dims_create(16, 2) == [4, 4]

    def test_non_square(self):
        dims = dims_create(48, 2)
        assert sorted(dims, reverse=True) == dims
        assert dims[0] * dims[1] == 48

    def test_prime(self):
        assert dims_create(7, 2) == [7, 1]

    def test_3d(self):
        dims = dims_create(64, 3)
        assert dims == [4, 4, 4]

    def test_one_rank(self):
        assert dims_create(1, 2) == [1, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)


class TestCartComm:
    def _cart(self, dims):
        world = World(int(np.prod(dims)))
        return [CartComm(c, dims) for c in world.comms]

    def test_coords_roundtrip(self):
        carts = self._cart([2, 3])
        for cart in carts:
            assert cart.rank_of(cart.coords()) == cart.rank

    def test_shift_interior(self):
        carts = self._cart([3, 3])
        centre = carts[4]  # coords (1, 1)
        lo, hi = centre.shift(0)
        assert (lo, hi) == (1, 7)

    def test_shift_boundary_is_none(self):
        carts = self._cart([3, 3])
        corner = carts[0]
        lo, hi = corner.shift(0)
        assert lo is None and hi == 3

    def test_neighbours_of_corner(self):
        carts = self._cart([3, 3])
        assert carts[0].neighbours() == [1, 3]

    def test_size_mismatch_rejected(self):
        world = World(4)
        with pytest.raises(ValueError):
            CartComm(world.comms[0], [3, 3])
