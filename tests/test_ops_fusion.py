"""Cross-loop tiling (lazy execution / loop fusion) correctness and legality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ops
from repro.common.errors import APIError
from repro.ops.fusion import LoopChain


def axpy(a, b):
    b[0, 0] = 2.0 * a[0, 0] + 1.0


def square(b, c):
    c[0, 0] = b[0, 0] * b[0, 0]


def smooth(a, b):
    b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])


def setup(nx=20, ny=16, seed=0):
    blk = ops.Block(2)
    rng = np.random.default_rng(seed)
    a = ops.Dat(blk, (nx, ny), halo_depth=2, name="a")
    b = ops.Dat(blk, (nx, ny), halo_depth=2, name="b")
    c = ops.Dat(blk, (nx, ny), halo_depth=2, name="c")
    a.interior[...] = rng.standard_normal((nx, ny))
    return blk, a, b, c


class TestCorrectness:
    def test_pointwise_pipeline_matches_eager(self):
        blk, a, b, c = setup()
        r = [(0, 20), (0, 16)]
        # eager
        ops.par_loop(axpy, blk, r, a(ops.READ), b(ops.WRITE))
        ops.par_loop(square, blk, r, b(ops.READ), c(ops.WRITE))
        ref_c = c.interior.copy()
        # fused
        b.data[:] = 0
        c.data[:] = 0
        chain = LoopChain(tile_shape=(6, 5))
        chain.add(axpy, blk, r, a(ops.READ), b(ops.WRITE))
        chain.add(square, blk, r, b(ops.READ), c(ops.WRITE))
        stats = chain.execute()
        np.testing.assert_array_equal(c.interior, ref_c)
        assert stats["groups"] == 1
        assert stats["largest_group"] == 2
        assert stats["tiles"] > 1

    def test_stencil_raw_matches_eager(self):
        """A wide-stencil consumer forces a group break; results still match."""
        blk, a, b, c = setup()
        r_in = [(1, 19), (1, 15)]
        ops.par_loop(axpy, blk, [(0, 20), (0, 16)], a(ops.READ), b(ops.WRITE))
        ops.par_loop(smooth, blk, r_in, b(ops.READ, ops.S2D_5PT), c(ops.WRITE))
        ref_c = c.interior.copy()

        b.data[:] = 0
        c.data[:] = 0
        chain = LoopChain(tile_shape=(7, 7))
        chain.add(axpy, blk, [(0, 20), (0, 16)], a(ops.READ), b(ops.WRITE))
        chain.add(smooth, blk, r_in, b(ops.READ, ops.S2D_5PT), c(ops.WRITE))
        stats = chain.execute()
        np.testing.assert_array_equal(c.interior, ref_c)
        assert stats["groups"] == 2  # broke at the stencil consumer

    def test_war_through_stencil_breaks_group(self):
        """smooth reads a wide; a later write of a must not be fused in."""
        blk, a, b, c = setup()
        r_in = [(1, 19), (1, 15)]
        full = [(0, 20), (0, 16)]
        ops.par_loop(smooth, blk, r_in, a(ops.READ, ops.S2D_5PT), b(ops.WRITE))
        ops.par_loop(axpy, blk, full, b(ops.READ), a(ops.WRITE))
        ref_a = a.interior.copy()

        blk2, a2, b2, c2 = setup()
        chain = LoopChain(tile_shape=(5, 5))
        chain.add(smooth, blk2, r_in, a2(ops.READ, ops.S2D_5PT), b2(ops.WRITE))
        chain.add(axpy, blk2, full, b2(ops.READ), a2(ops.WRITE))
        stats = chain.execute()
        np.testing.assert_array_equal(a2.interior, ref_a)
        assert stats["groups"] == 2

    def test_reductions_fuse_fine(self):
        blk, a, b, c = setup()
        r = [(0, 20), (0, 16)]
        tot = ops.Reduction("inc")

        def summing(x, t):
            t.inc(x[0, 0])

        chain = LoopChain(tile_shape=(8, 8))
        chain.add(axpy, blk, r, a(ops.READ), b(ops.WRITE))
        chain.add(summing, blk, r, b(ops.READ), tot, name="summing")
        stats = chain.execute()
        assert stats["groups"] == 1
        assert tot.value == pytest.approx((2 * a.interior + 1).sum())

    def test_differing_ranges_covered_exactly(self):
        blk, a, b, c = setup()
        chain = LoopChain(tile_shape=(6, 6))
        chain.add(axpy, blk, [(2, 18), (0, 16)], a(ops.READ), b(ops.WRITE))
        chain.add(square, blk, [(4, 10), (3, 9)], b(ops.READ), c(ops.WRITE))
        chain.execute()
        # outside loop-2's range c stays zero; inside it matches
        expect = (2 * a.interior + 1) ** 2
        np.testing.assert_array_equal(c.interior[4:10, 3:9], expect[4:10, 3:9])
        assert c.interior[0:4, :].sum() == 0.0

    @given(tx=st.integers(2, 12), ty=st.integers(2, 12), seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_property_fused_equals_eager(self, tx, ty, seed):
        blk, a, b, c = setup(seed=seed)
        r = [(0, 20), (0, 16)]
        r_in = [(1, 19), (1, 15)]
        ops.par_loop(axpy, blk, r, a(ops.READ), b(ops.WRITE))
        ops.par_loop(smooth, blk, r_in, b(ops.READ, ops.S2D_5PT), c(ops.WRITE))
        ops.par_loop(square, blk, r, c(ops.READ), b(ops.WRITE))
        ref_b = b.interior.copy()

        blk2, a2, b2, c2 = setup(seed=seed)
        chain = LoopChain(tile_shape=(tx, ty))
        chain.add(axpy, blk2, r, a2(ops.READ), b2(ops.WRITE))
        chain.add(smooth, blk2, r_in, b2(ops.READ, ops.S2D_5PT), c2(ops.WRITE))
        chain.add(square, blk2, r, c2(ops.READ), b2(ops.WRITE))
        chain.execute()
        np.testing.assert_array_equal(b2.interior, ref_b)


class TestAPI:
    def test_single_block_only(self):
        blk, a, b, c = setup()
        other = ops.Block(2)
        d = ops.Dat(other, (4, 4))
        chain = LoopChain()
        chain.add(axpy, blk, [(0, 4), (0, 4)], a(ops.READ), b(ops.WRITE))
        with pytest.raises(APIError, match="single block"):
            chain.add(axpy, other, [(0, 4), (0, 4)], d(ops.READ), d(ops.RW))

    def test_queue_cleared_after_execute(self):
        blk, a, b, c = setup()
        chain = LoopChain()
        chain.add(axpy, blk, [(0, 4), (0, 4)], a(ops.READ), b(ops.WRITE))
        chain.execute()
        assert not chain.queued

    def test_no_tile_shape_runs_eagerly(self):
        blk, a, b, c = setup()
        chain = LoopChain(tile_shape=None)
        chain.add(axpy, blk, [(0, 20), (0, 16)], a(ops.READ), b(ops.WRITE))
        stats = chain.execute()
        assert stats["tiles"] == 0
        np.testing.assert_array_equal(b.interior, 2 * a.interior + 1)
