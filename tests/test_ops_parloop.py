"""OPS parallel loops: backend equivalence, reductions, stencil checking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ops
from repro.common.counters import PerfCounters
from repro.common.errors import APIError, StencilMismatchError
from repro.common.profiling import counters_scope


def smooth(a, b):
    b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])


def copy_k(a, b):
    b[0, 0] = a[0, 0]


def setup(nx=12, ny=10):
    blk = ops.Block(2)
    u = ops.Dat(blk, (nx, ny), halo_depth=2, name="u")
    v = ops.Dat(blk, (nx, ny), halo_depth=2, name="v")
    u.interior[...] = np.arange(nx * ny, dtype=float).reshape(nx, ny)
    return blk, u, v


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["vec", "tiled"])
    def test_matches_seq(self, backend):
        blk, u, v = setup()
        ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                     v(ops.WRITE), backend="seq")
        ref = v.interior.copy()
        v.data[:] = 0
        ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                     v(ops.WRITE), backend=backend)
        np.testing.assert_allclose(v.interior, ref)

    def test_tiled_custom_shape(self):
        blk, u, v = setup()
        ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                     v(ops.WRITE), backend="tiled", tile_shape=(4, 4))
        ref = v.interior.copy()
        v.data[:] = 0
        ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                     v(ops.WRITE), backend="vec")
        np.testing.assert_allclose(v.interior, ref)

    @given(
        nx=st.integers(4, 16),
        ny=st.integers(4, 16),
        tile=st.integers(2, 8),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_tiled_equals_vec(self, nx, ny, tile, seed):
        rng = np.random.default_rng(seed)
        blk = ops.Block(2)
        u = ops.Dat(blk, (nx, ny), halo_depth=2)
        v1 = ops.Dat(blk, (nx, ny), halo_depth=2)
        v2 = ops.Dat(blk, (nx, ny), halo_depth=2)
        u.interior[...] = rng.standard_normal((nx, ny))
        r = [(1, nx - 1), (1, ny - 1)]
        ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v1(ops.WRITE), backend="vec")
        ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v2(ops.WRITE),
                     backend="tiled", tile_shape=(tile, tile))
        np.testing.assert_allclose(v1.interior, v2.interior)


class TestReductions:
    def test_inc(self):
        blk, u, v = setup()
        total = ops.Reduction("inc")

        def summing(a, t):
            t.inc(a[0, 0])

        ops.par_loop(summing, blk, [(0, 12), (0, 10)], u(ops.READ), total)
        assert total.value == pytest.approx(u.interior.sum())

    def test_min_and_seq_vec_agree(self):
        blk, u, v = setup()

        def minner(a, t):
            t.min(a[0, 0])

        for be in ("seq", "vec"):
            t = ops.Reduction("min")
            ops.par_loop(minner, blk, [(2, 7), (3, 8)], u(ops.READ), t, backend=be)
            assert t.value == u.interior[2:7, 3:8].min()

    def test_kind_mismatch_raises(self):
        r = ops.Reduction("inc")
        with pytest.raises(APIError):
            r.min(1.0)

    def test_reset(self):
        r = ops.Reduction("min")
        r.min(3.0)
        r.reset()
        assert r.value == np.inf


class TestStencilChecking:
    def test_out_of_stencil_access_detected(self):
        blk, u, v = setup()

        def bad(a, b):
            b[0, 0] = a[2, 0]

        with pytest.raises(StencilMismatchError, match="outside declared"):
            ops.par_loop(bad, blk, [(2, 4), (2, 4)], u(ops.READ, ops.S2D_5PT),
                         v(ops.WRITE), check=True)

    def test_write_with_read_access_detected(self):
        blk, u, v = setup()

        def sneaky(a, b):
            a[0, 0] = 1.0
            b[0, 0] = 0.0

        with pytest.raises(StencilMismatchError, match="writes"):
            ops.par_loop(sneaky, blk, [(0, 2), (0, 2)], u(ops.READ), v(ops.WRITE),
                         check=True)

    def test_read_of_writeonly_detected(self):
        blk, u, v = setup()

        def peek(a, b):
            b[0, 0] = b[0, 0] + a[0, 0]

        with pytest.raises(StencilMismatchError, match="write-only"):
            ops.par_loop(peek, blk, [(0, 2), (0, 2)], u(ops.READ), v(ops.WRITE),
                         check=True)

    def test_checks_in_seq_mode_too(self):
        blk, u, v = setup()

        def bad(a, b):
            b[0, 0] = a[2, 0]

        with pytest.raises(StencilMismatchError):
            ops.par_loop(bad, blk, [(2, 3), (2, 3)], u(ops.READ, ops.S2D_5PT),
                         v(ops.WRITE), backend="seq", check=True)

    def test_valid_kernel_passes_checks(self):
        blk, u, v = setup()
        ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                     v(ops.WRITE), check=True)


class TestValidation:
    def test_range_count_must_match_ndim(self):
        blk, u, v = setup()
        with pytest.raises(APIError):
            ops.par_loop(copy_k, blk, [(0, 5)], u(ops.READ), v(ops.WRITE))

    def test_foreign_block_dat_rejected(self):
        blk, u, v = setup()
        other = ops.Block(2)
        w = ops.Dat(other, (12, 10))
        with pytest.raises(APIError, match="block"):
            ops.par_loop(copy_k, blk, [(0, 5), (0, 5)], u(ops.READ), w(ops.WRITE))

    def test_negative_range_rejected(self):
        blk, u, v = setup()
        with pytest.raises(APIError):
            ops.par_loop(copy_k, blk, [(5, 2), (0, 5)], u(ops.READ), v(ops.WRITE))

    def test_unknown_backend(self):
        blk, u, v = setup()
        with pytest.raises(APIError):
            ops.par_loop(copy_k, blk, [(0, 2), (0, 2)], u(ops.READ), v(ops.WRITE),
                         backend="opencl")


class TestCounters:
    def test_traffic_accounting_counts_stencil_reads(self):
        blk, u, v = setup()
        c = PerfCounters()
        with counters_scope(c):
            ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                         v(ops.WRITE), flops_per_point=4)
        rec = c.loop("smooth")
        pts = 10 * 8
        assert rec.iterations == pts
        assert rec.bytes_read == pts * 8 * 5  # 5-point stencil
        assert rec.bytes_written == pts * 8
        assert rec.flops == pts * 4

    def test_tiled_records_tile_count(self):
        blk, u, v = setup()
        c = PerfCounters()
        with counters_scope(c):
            ops.par_loop(smooth, blk, [(1, 11), (1, 9)], u(ops.READ, ops.S2D_5PT),
                         v(ops.WRITE), backend="tiled", tile_shape=(4, 4))
        assert c.loop("smooth").colours > 1
