"""CloverLeaf: conservation, original-vs-OPS parity, distributed runs."""

import numpy as np
import pytest

from repro.apps.cloverleaf import CloverLeafApp, CloverLeafReference, clover_bm_state
from repro.apps.cloverleaf.app import DistributedCloverLeafApp
from repro.apps.cloverleaf.state import DT_MAX
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope, loop_chain_record
from repro.ops.decomp import DecomposedBlock
from repro.simmpi import run_spmd


class TestSetup:
    def test_clover_bm_regions(self):
        st = clover_bm_state(16, 16)
        assert st.density0.interior[0, 0] == 1.0
        assert st.density0.interior[-1, -1] == 0.2
        assert st.energy0.interior[0, 0] == 2.5

    def test_staggered_field_sizes(self):
        st = clover_bm_state(8, 6)
        assert st.density0.size == (8, 6)
        assert st.xvel0.size == (9, 7)
        assert st.vol_flux_x.size == (9, 6)
        assert st.vol_flux_y.size == (8, 7)


class TestConservation:
    def test_mass_exactly_conserved(self):
        app = CloverLeafApp(nx=24, ny=24)
        before = app.field_summary()["mass"]
        app.run(15)
        after = app.field_summary()["mass"]
        assert after == pytest.approx(before, rel=1e-12)

    def test_volume_constant(self):
        app = CloverLeafApp(nx=16, ny=16)
        s = app.run(5)
        assert s["volume"] == pytest.approx(100.0)

    def test_energy_flows_from_source_region(self):
        app = CloverLeafApp(nx=24, ny=24)
        app.run(20)
        # the shock expands: kinetic energy appears
        s = app.field_summary()
        assert s["ke"] > 0.0
        assert np.isfinite(list(s.values())).all()

    def test_dt_obeys_cap(self):
        app = CloverLeafApp(nx=16, ny=16)
        for _ in range(5):
            assert app.step() <= DT_MAX

    def test_density_stays_positive(self):
        app = CloverLeafApp(nx=24, ny=24)
        app.run(20)
        assert (app.st.density0.interior > 0).all()


class TestOriginalParity:
    """Paper Fig 5 methodology: OPS vs hand-coded original."""

    def test_bitwise_parity(self):
        app = CloverLeafApp(nx=24, ny=20)
        ref = CloverLeafReference(24, 20)
        sa = app.run(8)
        sr = ref.run(8)
        for key in sa:
            if key == "volume":
                # OPS sums per-cell volumes; the reference multiplies once
                assert sa[key] == pytest.approx(sr[key], rel=1e-12)
            else:
                assert sa[key] == sr[key], key
        np.testing.assert_array_equal(
            app.st.density0.interior, ref._int(ref.density0, (24, 20))
        )
        np.testing.assert_array_equal(
            app.st.xvel0.interior, ref._int(ref.xvel0, (25, 21))
        )

    def test_seq_backend_matches_vec(self):
        a = CloverLeafApp(nx=8, ny=8, backend="seq")
        b = CloverLeafApp(nx=8, ny=8, backend="vec")
        sa = a.run(2)
        sb = b.run(2)
        for key in sa:
            assert sa[key] == pytest.approx(sb[key], rel=1e-13), key

    def test_tiled_backend_matches_vec(self):
        a = CloverLeafApp(nx=20, ny=20, backend="tiled")
        b = CloverLeafApp(nx=20, ny=20, backend="vec")
        sa = a.run(3)
        sb = b.run(3)
        for key in sa:
            assert sa[key] == pytest.approx(sb[key], rel=1e-13), key


class TestLoopChain:
    def test_kernel_families_present(self):
        """All the original's kernel families appear in one step."""
        app = CloverLeafApp(nx=8, ny=8)
        with loop_chain_record() as events:
            app.step()
            app.field_summary()
        names = {e.name for e in events}
        for expected in (
            "ideal_gas", "viscosity", "calc_dt", "pdv_predict", "revert",
            "accelerate", "pdv_correct", "flux_calc_x", "flux_calc_y",
            "mass_ener_flux_x", "advec_cell_x", "advec_mom_node_mass",
            "advec_mom_flux_x", "advec_mom_update_x", "reset_field_cell",
            "reset_field_node", "field_summary",
        ):
            assert expected in names, expected

    def test_traffic_recorded_per_kernel(self):
        c = PerfCounters()
        app = CloverLeafApp(nx=16, ny=16)
        with counters_scope(c):
            app.step()
        assert c.loop("advec_cell_x").bytes_moved > 0
        assert c.loop("calc_dt").iterations == 16 * 16


class TestDistributed:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_matches_serial_bitwise(self, nranks):
        serial = CloverLeafApp(nx=20, ny=16)
        s_ser = serial.run(4)

        gstate = clover_bm_state(20, 16)
        dec = DecomposedBlock(nranks, gstate.block, gstate.all_dats, global_size=(20, 16))

        def main(comm):
            app = DistributedCloverLeafApp(comm, dec, gstate)
            s = app.run(4)
            return s, app.gather_field("density0")

        s_dist, dens = run_spmd(nranks, main)[0]
        for key in s_ser:
            assert s_dist[key] == pytest.approx(s_ser[key], rel=1e-13), key
        np.testing.assert_allclose(dens, serial.st.density0.interior, atol=1e-14)

    def test_dt_agrees_across_ranks(self):
        gstate = clover_bm_state(16, 16)
        dec = DecomposedBlock(4, gstate.block, gstate.all_dats, global_size=(16, 16))

        def main(comm):
            app = DistributedCloverLeafApp(comm, dec, gstate)
            return app.step()

        dts = run_spmd(4, main)
        assert len(set(dts)) == 1


class TestFusedLagrangian:
    def test_fused_matches_unfused_bitwise(self):
        a = CloverLeafApp(nx=20, ny=16, fuse_lagrangian=False)
        b = CloverLeafApp(nx=20, ny=16, fuse_lagrangian=True)
        sa = a.run(4)
        sb = b.run(4)
        for key in sa:
            assert sa[key] == sb[key], key
        np.testing.assert_array_equal(
            a.st.density0.interior, b.st.density0.interior
        )

    def test_fused_groups_the_predictor(self):
        from repro.common.profiling import loop_chain_record

        app = CloverLeafApp(nx=8, ny=8, fuse_lagrangian=True)
        with loop_chain_record() as events:
            app.step()
        names = [e.name for e in events]
        # fusion preserves the loop sequence (tiles re-run loops in order,
        # so the three predictor loops appear interleaved per tile)
        assert "pdv_predict" in names and "revert" in names


class TestSymmetry:
    def test_square_blast_stays_diagonally_symmetric(self):
        """The clover_bm source is symmetric under x<->y on a square grid;
        the solution must stay so (direction-split bias cancels over the
        alternating sweeps)."""
        app = CloverLeafApp(nx=24, ny=24)
        app.run(12)  # even number: both sweep orders applied equally
        # symmetry holds to the direction-splitting error, O(dt^2) per step
        d = app.st.density0.interior
        np.testing.assert_allclose(d, d.T, atol=5e-4)
        e = app.st.energy0.interior
        np.testing.assert_allclose(e, e.T, atol=5e-3)
        # velocities swap components under the reflection
        xv = app.st.xvel0.interior
        yv = app.st.yvel0.interior
        np.testing.assert_allclose(xv, yv.T, atol=1e-3)
