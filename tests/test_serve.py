"""Tests for the serving layer (repro.serve).

Covers the queue's admission and fairness rules, deterministic job IDs,
the job state machine, end-to-end scheduling on warm sessions (including
cross-job plan-cache sharing), cancel, fault retry, the telemetry-fed
dashboard, the demo CLI, checkpoint-round namespacing, and — the load-
bearing guarantee — bitwise-identical preempt -> resume at 1 and 4 ranks.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import op2
from repro.checkpoint.store import latest_common_round, round_glob, round_path
from repro.common.config import Config, configure, get_config
from repro.common.errors import (
    QueueFullRejected,
    ServeError,
    TenantQuotaRejected,
)
from repro.resilience.faults import FaultPlan
from repro.serve import (
    CANCELLED,
    COMPLETED,
    FairShareQueue,
    Job,
    JobSpec,
    ServeService,
    deterministic_job_id,
)
from repro.telemetry import tracer as trace_mod


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Services enable the global tracer; don't leak it across tests."""
    trace_mod.disable()
    yield
    trace_mod.disable()


def _job(tenant="t", priority=0, seq=0, **kw) -> Job:
    spec = JobSpec(tenant=tenant, priority=priority, **kw)
    return Job(spec, f"{tenant}-{seq:05d}-deadbeef", seq)


# ---------------------------------------------------------------------------
# specs, IDs, state machine
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ServeError):
            JobSpec(nranks=0)
        with pytest.raises(ServeError):
            JobSpec(iterations=0)
        with pytest.raises(ServeError):
            JobSpec(checkpoint_frequency=0)  # preemptible by default
        with pytest.raises(ServeError):
            JobSpec(max_retries=-1)
        JobSpec(preemptible=False, checkpoint_frequency=0)  # fine when inert

    def test_session_key_shape(self):
        a = JobSpec(params={"nx": 10, "ny": 4}, iterations=5, tenant="a")
        b = JobSpec(params={"ny": 4, "nx": 10}, iterations=50, tenant="b", priority=9)
        # run length / tenant / priority don't split warm sessions;
        # param order doesn't matter
        assert a.session_key() == b.session_key()
        assert a.session_key() != JobSpec(params={"nx": 11, "ny": 4}).session_key()
        assert a.session_key() != JobSpec(params={"nx": 10, "ny": 4}, nranks=2).session_key()

    def test_deterministic_ids(self):
        spec = JobSpec(tenant="acme", iterations=7)
        a = deterministic_job_id(42, "acme", 3, spec)
        assert a == deterministic_job_id(42, "acme", 3, spec)
        assert a.startswith("acme-00003-")
        assert a != deterministic_job_id(43, "acme", 3, spec)
        assert a != deterministic_job_id(42, "acme", 4, spec)


class TestStateMachine:
    def test_happy_path(self):
        job = _job()
        for state in ("running", "preempting", "preempted", "queued",
                      "running", "completed"):
            job.transition(state)
        assert job.done and job.latency is not None

    def test_illegal_transition(self):
        job = _job()
        with pytest.raises(ServeError, match="illegal transition"):
            job.transition(COMPLETED)  # queued -> completed skips running
        job.transition("running")
        job.transition("completed")
        with pytest.raises(ServeError):
            job.transition("running")  # terminal states are final

    def test_unknown_state(self):
        with pytest.raises(ServeError, match="unknown job state"):
            _job().transition("paused")


# ---------------------------------------------------------------------------
# queue: admission, fairness, backpressure
# ---------------------------------------------------------------------------


class TestFairShareQueue:
    def test_priority_then_fairness_then_seq(self):
        q = FairShareQueue()
        lo = _job(tenant="a", priority=0, seq=0)
        hi = _job(tenant="b", priority=5, seq=1)
        q.push(lo)
        q.push(hi)
        assert q.pop() is hi  # priority wins over submission order
        # tenant b now has one in-flight job; at equal priority tenant a wins
        a2 = _job(tenant="a", priority=0, seq=2)
        b2 = _job(tenant="b", priority=0, seq=3)
        q.push(b2)
        q.push(a2)
        assert q.pop() is lo  # tenant a preferred, oldest of a's jobs first
        # in-flight now equal (a:1, b:1): submission order breaks the tie
        assert q.pop() is a2
        assert q.pop() is b2

    def test_queue_full_rejection_is_typed(self):
        q = FairShareQueue(max_depth=2)
        q.push(_job(seq=0))
        q.push(_job(seq=1))
        with pytest.raises(QueueFullRejected) as exc:
            q.push(_job(seq=2))
        assert exc.value.limit == 2 and exc.value.depth == 2
        assert q.rejections["queue_full"] == 1

    def test_tenant_quota_rejection_is_typed(self):
        q = FairShareQueue(tenant_quota=1)
        q.push(_job(tenant="a", seq=0))
        q.push(_job(tenant="b", seq=1))  # other tenants unaffected
        with pytest.raises(TenantQuotaRejected) as exc:
            q.push(_job(tenant="a", seq=2))
        assert exc.value.tenant == "a" and exc.value.limit == 1
        assert q.rejections["tenant_quota"] == 1

    def test_requeue_bypasses_admission(self):
        q = FairShareQueue(max_depth=1)
        q.push(_job(seq=0))
        preempted = _job(seq=1)
        q.requeue(preempted)  # over depth limit, still accepted
        assert len(q) == 2

    def test_cancel_pending(self):
        q = FairShareQueue()
        job = _job(seq=0)
        q.push(job)
        assert q.cancel(job.job_id) is job
        assert job.state == CANCELLED and len(q) == 0
        assert q.cancel("nope") is None

    def test_eligibility_filter(self):
        q = FairShareQueue()
        a, b = _job(tenant="a", seq=0), _job(tenant="b", seq=1)
        q.push(a)
        q.push(b)
        assert q.pop(eligible=lambda j: j is b) is b
        assert q.pop(eligible=lambda j: False) is None
        assert len(q) == 1


# ---------------------------------------------------------------------------
# end-to-end service
# ---------------------------------------------------------------------------

SMALL = {"nx": 8, "ny": 6}


async def _serve(tmp_path, coro, **service_kw):
    service = ServeService(
        workers=service_kw.pop("workers", 2),
        ckpt_dir=tmp_path / "ckpt",
        **service_kw,
    )
    async with service:
        return await coro(service)


class TestServiceEndToEnd:
    def test_basic(self, tmp_path):
        async def scenario(service):
            spec = JobSpec(iterations=4, params=dict(SMALL))
            first = await service.submit(spec)
            second = await service.submit(JobSpec(iterations=4, params=dict(SMALL)))
            r1 = await service.result(first, timeout=60)
            r2 = await service.result(second, timeout=60)
            return (
                first,
                second,
                r1,
                r2,
                service.status(first),
                service.status(second),
                service.stats(),
                service.dashboard(),
            )

        first, second, r1, r2, st1, st2, stats, dash = asyncio.run(
            _serve(tmp_path, scenario)
        )
        # same session, reset between jobs: bitwise-identical results
        assert np.array_equal(np.asarray(r1[0][0]), np.asarray(r2[0][0]))
        assert np.array_equal(r1[0][1], r2[0][1])
        assert st1["state"] == st2["state"] == "completed"
        # the second job replayed the first job's compiled plans
        assert st2["plan_misses"] == 0 and st2["plan_hits"] > 0
        assert stats["jobs_accepted"] == 2
        assert stats["scheduler"]["completed"] == 2
        assert stats["sessions"]["sessions"] == 1
        # dashboard slices telemetry per job and per tenant
        assert first in dash["jobs"] and second in dash["jobs"]
        metrics = dash["jobs"][first]["metrics"]
        assert metrics["spans"]["serve_job"]["count"] == 1
        assert dash["tenants"]["default"]["metrics"]["instants"]["job_submitted"] == 2

    def test_rejected_submission_burns_no_sequence_number(self, tmp_path):
        async def scenario(service):
            a = await service.submit(JobSpec(iterations=2, params=dict(SMALL)))
            with pytest.raises(TenantQuotaRejected):
                await service.submit(JobSpec(iterations=2, params=dict(SMALL)))
            await service.result(a, timeout=60)  # drain the queue
            b = await service.submit(JobSpec(iterations=2, params=dict(SMALL)))
            return a, b

        a, b = asyncio.run(_serve(tmp_path, scenario, tenant_quota=1, workers=1))
        assert a.split("-")[1] == "00000"
        assert b.split("-")[1] == "00001"  # the rejection consumed nothing

    def test_cancel_pending_job(self, tmp_path):
        async def scenario(service):
            # one worker busy on a long job; the second submission stays queued
            runner = await service.submit(
                JobSpec(iterations=40, params=dict(SMALL), preemptible=False)
            )
            victim = await service.submit(
                JobSpec(iterations=40, params={"nx": 9, "ny": 7})
            )
            assert service.cancel(victim)
            with pytest.raises(ServeError, match="cancelled"):
                await service.result(victim, timeout=60)
            await service.result(runner, timeout=60)
            return service.status(victim)

        status = asyncio.run(_serve(tmp_path, scenario, workers=1))
        assert status["state"] == "cancelled"

    def test_unknown_job(self, tmp_path):
        async def scenario(service):
            with pytest.raises(ServeError, match="unknown job"):
                service.status("nope")

        asyncio.run(_serve(tmp_path, scenario))

    def test_retry_on_injected_fault(self, tmp_path):
        plan = FaultPlan().kill(0, at_loop=12)

        async def scenario(service):
            faulty = await service.submit(
                JobSpec(iterations=6, params=dict(SMALL), fault_plan=plan,
                        checkpoint_frequency=4, max_retries=2)
            )
            clean = await service.submit(
                JobSpec(iterations=6, params=dict(SMALL), checkpoint_frequency=4)
            )
            rf = await service.result(faulty, timeout=60)
            rc = await service.result(clean, timeout=60)
            return rf, rc, service.status(faulty), service.stats()

        rf, rc, status, stats = asyncio.run(_serve(tmp_path, scenario, workers=1))
        assert status["state"] == "completed"
        assert status["retries"] == 1  # the kill budget fires exactly once
        assert stats["scheduler"]["retries"] == 1
        # the retried job resumed from its checkpoint and matched the clean run
        assert np.array_equal(np.asarray(rf[0][0]), np.asarray(rc[0][0]))
        assert np.array_equal(rf[0][1], rc[0][1])

    def test_fault_exhausts_retry_budget(self, tmp_path):
        plan = (
            FaultPlan()
            .kill(0, at_loop=5)
            .kill(0, at_loop=6)
            .kill(0, at_loop=7)
        )

        async def scenario(service):
            jid = await service.submit(
                JobSpec(iterations=6, params=dict(SMALL), fault_plan=plan,
                        checkpoint_frequency=4, max_retries=1)
            )
            with pytest.raises(Exception, match="killed"):
                await service.result(jid, timeout=60)
            return service.status(jid)

        status = asyncio.run(_serve(tmp_path, scenario, workers=1))
        assert status["state"] == "failed"


# ---------------------------------------------------------------------------
# preempt -> resume: bitwise equivalence (the tentpole guarantee)
# ---------------------------------------------------------------------------


async def _preempted_run(service, spec):
    """Submit ``spec``, preempt it once mid-run, await its result."""
    jid = await service.submit(spec)
    deadline = time.perf_counter() + 60
    while time.perf_counter() < deadline:
        if service.status(jid)["state"] == "running" and service.preempt(jid):
            break
        await asyncio.sleep(0.001)
    result = await service.result(jid, timeout=120)
    return jid, result


class TestPreemptResumeBitwise:
    @pytest.mark.parametrize("nranks", [1, 4])
    def test_preempted_equals_uninterrupted(self, tmp_path, nranks):
        spec_kw = dict(
            iterations=40,
            nranks=nranks,
            params={"nx": 10, "ny": 8},
            checkpoint_frequency=5,
        )

        async def reference(service):
            jid = await service.submit(JobSpec(**spec_kw))
            return await service.result(jid, timeout=120)

        async def preempted(service):
            return await _preempted_run(service, JobSpec(**spec_kw))

        ref = asyncio.run(_serve(tmp_path / "ref", reference, workers=1))
        jid, got = asyncio.run(_serve(tmp_path / "pre", preempted, workers=1))

        assert len(got) == nranks
        for rank in range(nranks):
            ref_rms, ref_q = ref[rank]
            got_rms, got_q = got[rank]
            assert np.array_equal(np.asarray(ref_rms), np.asarray(got_rms))
            assert np.array_equal(ref_q, got_q), (
                f"rank {rank}: resumed state diverged from uninterrupted run"
            )

    def test_preemption_actually_happened(self, tmp_path):
        # guard against the bitwise test passing vacuously
        async def preempted(service):
            return await _preempted_run(
                service,
                JobSpec(iterations=40, params={"nx": 10, "ny": 8},
                        checkpoint_frequency=5),
            )

        async def scenario(service):
            jid, _ = await preempted(service)
            return service.status(jid), service.stats()

        status, stats = asyncio.run(_serve(tmp_path, scenario, workers=1))
        assert status["state"] == "completed"
        assert status["preemptions"] >= 1
        assert status["resumes"] >= 1
        assert status["last_resume_round"] is not None
        assert stats["scheduler"]["preemptions"] >= 1


# ---------------------------------------------------------------------------
# checkpoint-round namespacing (concurrent jobs share one FileStore dir)
# ---------------------------------------------------------------------------


class TestCheckpointNamespacing:
    def test_round_path_namespacing(self, tmp_path):
        plain = round_path(tmp_path, 0, 3)
        spaced = round_path(tmp_path, 0, 3, job_id="t-00001-abc")
        assert plain.name == "ckpt-r000-n0003.npz"
        assert spaced.name == "ckpt-jt-00001-abc-r000-n0003.npz"

    def test_round_glob_separates_namespaces(self, tmp_path):
        for name in (
            "ckpt-r000-n0000.npz",
            "ckpt-ja-00000-x-r000-n0000.npz",
            "ckpt-jb-00001-y-r000-n0000.npz",
        ):
            (tmp_path / name).touch()
        assert [p.name for p in round_glob(tmp_path)] == ["ckpt-r000-n0000.npz"]
        assert [p.name for p in round_glob(tmp_path, job_id="a-00000-x")] == [
            "ckpt-ja-00000-x-r000-n0000.npz"
        ]

    def test_concurrent_jobs_do_not_collide(self, tmp_path):
        # two preemptible jobs on distinct sessions share one ckpt dir;
        # namespaced rounds keep their recovery state disjoint
        async def scenario(service):
            a = await service.submit(
                JobSpec(iterations=30, params={"nx": 9, "ny": 6},
                        checkpoint_frequency=4)
            )
            b = await service.submit(
                JobSpec(iterations=30, params={"nx": 11, "ny": 7},
                        checkpoint_frequency=4)
            )
            for jid in (a, b):
                deadline = time.perf_counter() + 60
                while time.perf_counter() < deadline:
                    if (service.status(jid)["state"] == "running"
                            and service.preempt(jid)):
                        break
                    await asyncio.sleep(0.001)
            ra = await service.result(a, timeout=120)
            rb = await service.result(b, timeout=120)
            return a, b, ra, rb, service.status(a), service.status(b)

        a, b, ra, rb, sa, sb = asyncio.run(_serve(tmp_path, scenario, workers=2))
        assert sa["state"] == sb["state"] == "completed"
        # both resumed; a job recovering from the other's rounds would
        # either crash (mesh sizes differ) or silently diverge
        assert ra[0][1].shape != rb[0][1].shape

    def test_latest_common_round_respects_namespace(self, tmp_path):
        from repro.checkpoint.store import FileStore

        for job, rounds in (("a-00000-x", 2), ("b-00001-y", 1)):
            for r in range(rounds):
                store = FileStore(round_path(tmp_path, 0, r, job_id=job))
                store.set_entry(r * 10)
                store.save_dataset("q", np.zeros(3))
                store.flush()
        assert latest_common_round(tmp_path, 1, job_id="a-00000-x")[0] == 1
        assert latest_common_round(tmp_path, 1, job_id="b-00001-y")[0] == 0
        assert latest_common_round(tmp_path, 1) is None


# ---------------------------------------------------------------------------
# plan-cache capacity (env var + API)
# ---------------------------------------------------------------------------


class TestPlanCacheCapacity:
    def teardown_method(self):
        configure(execplan_cache_size=Config().execplan_cache_size)

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECPLAN_CACHE_SIZE", "7")
        assert Config().execplan_cache_size == 7
        monkeypatch.setenv("REPRO_EXECPLAN_CACHE_SIZE", "garbage")
        assert Config().execplan_cache_size == 512  # bad values ignored
        monkeypatch.delenv("REPRO_EXECPLAN_CACHE_SIZE")
        assert Config().execplan_cache_size == 512

    def test_api_rejects_nonsense(self):
        with pytest.raises(ValueError):
            op2.set_plan_cache_capacity(0)

    def test_capacity_shrink_evicts_now(self, tmp_path):
        async def scenario(service):
            jid = await service.submit(JobSpec(iterations=2, params=dict(SMALL)))
            await service.result(jid, timeout=60)
            return service.stats()

        stats = asyncio.run(_serve(tmp_path, scenario))
        assert stats["plan_cache"]["size"] > 1
        before = stats["plan_cache"]["evictions"]
        op2.set_plan_cache_capacity(1)
        after = op2.plan_cache_stats()
        assert after["size"] == 1
        assert after["evictions"] > before
        assert get_config().execplan_cache_size == 1


# ---------------------------------------------------------------------------
# demo CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_demo_smoke(self, tmp_path):
        out = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve", "demo",
             "--tenants", "2", "--jobs", "2", "--iterations", "3",
             "--json", str(out), "--trace", str(trace)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "serve demo:" in proc.stdout
        report = json.loads(out.read_text())
        assert report["lost_jobs"] == []
        assert report["jobs_completed"] == report["jobs_submitted"]
        trace_obj = json.loads(trace.read_text())
        assert any(e.get("cat") == "serve" for e in trace_obj["traceEvents"])
