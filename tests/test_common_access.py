"""Access-mode semantics (the root of the access-execute abstraction)."""

import pytest

from repro.common.access import Access


class TestReads:
    def test_read_reads(self):
        assert Access.READ.reads

    def test_write_does_not_read(self):
        assert not Access.WRITE.reads

    def test_rw_reads(self):
        assert Access.RW.reads

    def test_inc_observes_old_value(self):
        # an increment's result depends on the prior contents: the
        # checkpoint planner must treat INC as reading
        assert Access.INC.reads

    def test_min_max_read(self):
        assert Access.MIN.reads and Access.MAX.reads


class TestWrites:
    def test_read_does_not_write(self):
        assert not Access.READ.writes

    @pytest.mark.parametrize("mode", [Access.WRITE, Access.RW, Access.INC, Access.MIN, Access.MAX])
    def test_all_others_write(self, mode):
        assert mode.writes


class TestReductions:
    def test_inc_is_reduction(self):
        assert Access.INC.is_reduction

    def test_min_max_are_reductions(self):
        assert Access.MIN.is_reduction and Access.MAX.is_reduction

    def test_read_write_rw_are_not(self):
        assert not Access.READ.is_reduction
        assert not Access.WRITE.is_reduction
        assert not Access.RW.is_reduction


class TestShortCodes:
    """The R/W/I/RW codes appear in Figure-8-style tables."""

    @pytest.mark.parametrize(
        "mode,code",
        [
            (Access.READ, "R"),
            (Access.WRITE, "W"),
            (Access.INC, "I"),
            (Access.RW, "RW"),
        ],
    )
    def test_code(self, mode, code):
        assert mode.short == code
