"""Lazy par_loop queueing and cross-loop tiled execution (repro.ops.lazy).

Three layers of evidence that laziness is invisible:

* a **differential battery** — every proxy app (CloverLeaf 2D/3D, Sod,
  multi-block diffusion, airfoil through the op2 hook) runs lazy-on vs
  eager-off, at 1 and 4 simulated ranks, and must agree bitwise (fused
  tiles execute the same NumPy ufuncs over sub-ranges; ``inc`` reductions
  never fuse, so no re-association is possible);
* **property tests** — randomly generated synthetic loop chains must yield
  schedules that respect every dependence edge and cover each loop's
  iteration space exactly once;
* **flush-semantics tests** — every observation point (``Dat.data``,
  ``Reduction.value``, checkpoint trigger, ``timing_report``, an op2 loop,
  a serve job result, an SPMD rank return) forces a flush, so no program
  can read stale data.

Plus regression coverage for the chain-schedule cache: hits across
timesteps (including dt-baking kernel factories), misses on dat
replacement, counters in the report footer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ops
from repro.apps.cloverleaf import CloverLeafApp, clover_bm_state
from repro.apps.cloverleaf.app import DistributedCloverLeafApp
from repro.apps.cloverleaf3d import CloverLeaf3DApp
from repro.apps.multiblock.app import MultiBlockDiffusion
from repro.apps.sod import SodApp
from repro.common.config import get_config, swap
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.common.report import timing_report
from repro.lint.dataflow import AccessRecord, build_dependence_graph
from repro.ops import lazy as lazy_mod
from repro.ops.decomp import DecomposedBlock
from repro.ops.tileplan import LoopSpec, build_tile_schedule
from repro.simmpi import run_spmd
from repro.verify import diff_backends


@pytest.fixture(autouse=True)
def _lazy_hygiene():
    """No test may leak queued loops or cached schedules into the next."""
    lazy_mod.clear_chain_cache()
    yield
    assert lazy_mod.ACTIVE == 0, "test left loops queued"
    assert not get_config().lazy, "test left lazy mode configured"
    lazy_mod.clear_chain_cache()


def smooth(a, b):
    b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])


def accum(b, a):
    a[0, 0] = a[0, 0] + b[0, 0]


def _chain_setup(n=24, seed=0):
    blk = ops.Block(2)
    u = ops.Dat(blk, (n, n), halo_depth=2, name="u")
    v = ops.Dat(blk, (n, n), halo_depth=2, name="v")
    u.interior[...] = np.random.default_rng(seed).random((n, n))
    return blk, u, v


def _queue_chain(blk, u, v, n=24, steps=2):
    r = [(1, n - 1), (1, n - 1)]
    for _ in range(steps):
        ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                     backend="vec")
        ops.par_loop(accum, blk, r, v(ops.READ), u(ops.RW), backend="vec")


# ---------------------------------------------------------------------------
# differential battery: lazy == eager on every proxy app
# ---------------------------------------------------------------------------


def _lazy_vs_eager(run_fn):
    """Run ``run_fn()`` eager and lazy; return the diff report (bitwise)."""

    def run(mode):
        with swap(lazy=(mode == "lazy")):
            out = run_fn()
            lazy_mod.flush("battery_end")
            return out

    return diff_backends(run, ["eager", "lazy"], reference="eager", trace=False)


class TestDifferentialBattery:
    def test_cloverleaf_2d(self):
        def run():
            app = CloverLeafApp(nx=12, ny=10, backend="vec")
            summary = app.run(3)
            st_ = app.st
            out = {k: np.asarray([v]) for k, v in summary.items()}
            out.update(
                density=st_.density0.interior.copy(),
                energy=st_.energy0.interior.copy(),
                xvel=st_.xvel0.interior.copy(),
                yvel=st_.yvel0.interior.copy(),
            )
            return out

        _lazy_vs_eager(run).assert_agree()

    def test_cloverleaf_3d(self):
        def run():
            app = CloverLeaf3DApp(8, 8, 6)
            summary = app.run(2)
            out = {k: np.asarray([v]) for k, v in summary.items()}
            out["density"] = app.st.density0.interior.copy()
            out["energy"] = app.st.energy0.interior.copy()
            return out

        _lazy_vs_eager(run).assert_agree()

    def test_sod_shock_tube(self):
        def run():
            app = SodApp(n=120, backend="vec")
            for _ in range(8):
                app.step()
            return {k: v.copy() for k, v in app.profiles().items()}

        _lazy_vs_eager(run).assert_agree()

    def test_multiblock_diffusion(self):
        def run():
            initial = np.add.outer(np.arange(16.0), np.sin(np.arange(8.0)))
            mb = MultiBlockDiffusion(8, 8, initial=initial)
            mb.run(4)
            return {"u": mb.solution().copy()}

        _lazy_vs_eager(run).assert_agree()

    def test_airfoil_via_op2_hook(self):
        # airfoil is an op2 (unstructured) app: its loops never queue, but a
        # lazy-configured process must run it unchanged — and its par_loops
        # must drain any pending ops queue (the mixed-API hook)
        from repro.apps.airfoil.app import AirfoilApp
        from repro.apps.airfoil.mesh import generate_mesh

        def run():
            app = AirfoilApp(generate_mesh(8, 6, jitter=0.1), backend="vec")
            app.run(2)
            m = app.mesh
            return {"q": m.q.data.copy(), "res": m.res.data.copy(),
                    "rms": np.asarray([app.rms.value])}

        _lazy_vs_eager(run).assert_agree()

    def test_battery_actually_fused(self):
        """The battery must exercise fusion, not fall back to whole loops."""
        c = PerfCounters()
        with counters_scope(c), swap(lazy=True):
            app = CloverLeafApp(nx=12, ny=10, backend="vec")
            app.run(2)
            lazy_mod.flush("check")
        assert c.lazy_loops > 0
        assert c.lazy_tiles > 0, "no fused tiles: battery is vacuous"
        assert c.lazy_bytes_saved > 0

    def test_wide_then_narrow_reader_then_write(self):
        """Runtime regression for the WAR pruning hole (review): a wide
        read of ``u``, then a centre read, then a write to ``u``.  The
        write's tiles must be skewed by the *wide* stencil even though
        the centre read is the nearer WAR source — under-skewing clobbers
        ``u`` before the logically-earlier wide read consumes it."""
        wide5 = ops.Stencil(2, [(0, 0), (2, 0), (-2, 0), (0, 2), (0, -2)],
                            "S2D_5PT_W2")

        def wide(a, b):
            b[0, 0] = a[2, 0] + a[-2, 0] + a[0, 2] + a[0, -2]

        def narrow(a, c):
            c[0, 0] = 0.5 * a[0, 0]

        def clobber(a):
            a[0, 0] = 7.0

        n = 32

        def run():
            blk = ops.Block(2)
            u = ops.Dat(blk, (n, n), halo_depth=2, name="u")
            b = ops.Dat(blk, (n, n), halo_depth=2, name="b")
            c = ops.Dat(blk, (n, n), halo_depth=2, name="c")
            u.interior[...] = np.random.default_rng(7).random((n, n))
            r = [(2, n - 2), (2, n - 2)]
            with swap(lazy_tile=(8, 8)):
                ops.par_loop(wide, blk, r, u(ops.READ, wide5), b(ops.WRITE),
                             backend="vec")
                ops.par_loop(narrow, blk, r, u(ops.READ), c(ops.WRITE),
                             backend="vec")
                ops.par_loop(clobber, blk, r, u(ops.WRITE), backend="vec")
                out = {"b": b.interior.copy(), "c": c.interior.copy(),
                       "u": u.interior.copy()}
            return out

        _lazy_vs_eager(run).assert_agree()

    @pytest.mark.parametrize("nranks", [1, 4])
    def test_cloverleaf_ranks(self, nranks):
        def run(mode):
            gstate = clover_bm_state(12, 8)
            dec = DecomposedBlock(nranks, gstate.block, gstate.all_dats,
                                  global_size=(12, 8))

            def main(comm):
                app = DistributedCloverLeafApp(comm, dec, gstate)
                s = app.run(2)
                return s, app.gather_field("density0")

            # config is process-global: swap on the caller thread covers all
            # rank threads (swapping inside rank bodies would race restores)
            with swap(lazy=(mode == "lazy")):
                s, dens = run_spmd(nranks, main)[0]
            out = {k: np.asarray([v]) for k, v in s.items()}
            out["density"] = dens
            return out

        diff_backends(
            run, ["eager", "lazy"], reference="eager", trace=False
        ).assert_agree()

    @pytest.mark.parametrize("nranks", [1, 4])
    def test_multiblock_ranks(self, nranks):
        """Per-rank independent problems: each rank queues and flushes its
        own chain on its own thread (the queue is thread-local)."""

        def run(mode):
            def main(comm):
                initial = np.add.outer(
                    np.arange(16.0) + comm.rank, np.sin(np.arange(8.0))
                )
                mb = MultiBlockDiffusion(8, 8, initial=initial)
                mb.run(3)
                return mb.solution().copy()

            with swap(lazy=(mode == "lazy")):
                sols = run_spmd(nranks, main)
            return {f"u{r}": sols[r] for r in range(nranks)}

        diff_backends(
            run, ["eager", "lazy"], reference="eager", trace=False
        ).assert_agree()


# ---------------------------------------------------------------------------
# property tests: the tile scheduler on synthetic chains
# ---------------------------------------------------------------------------


def _synthetic_chain(draw):
    ndim = draw(st.integers(1, 2))
    n_loops = draw(st.integers(2, 5))
    refs = ["a", "b", "c", "d"]
    specs = []
    for _ in range(n_loops):
        ranges = tuple(
            (lo, lo + draw(st.integers(4, 18)))
            for lo in (draw(st.integers(0, 3)) for _ in range(ndim))
        )
        accs = []
        for ref in draw(st.sets(st.sampled_from(refs), min_size=1, max_size=3)):
            reads = draw(st.booleans())
            writes = draw(st.booleans()) or not reads
            offsets = ()
            if reads:
                pts = draw(
                    st.sets(
                        st.tuples(*(st.integers(-2, 2) for _ in range(ndim))),
                        min_size=1, max_size=4,
                    )
                )
                offsets = tuple(sorted(pts))
            accs.append(
                AccessRecord(ref=ref, reads=reads, writes=writes, offsets=offsets)
            )
        specs.append(LoopSpec(ranges=ranges, accesses=tuple(accs),
                              fusable=True, block_id="blk"))
    tile = draw(st.one_of(st.none(), st.integers(3, 8)))
    return specs, (tile,) * ndim if tile else None


@st.composite
def chains(draw):
    return _synthetic_chain(draw)


def _assert_no_reachable_inversion(seq, src, dst, ext, label):
    """No ``src``-loop entry in the flat execution ``seq`` may run after a
    ``dst``-loop entry whose points it can reach through extent ``ext``."""
    for pos_dst, (l_dst, r_dst) in enumerate(seq):
        if l_dst != dst:
            continue
        for pos_src in range(pos_dst + 1, len(seq)):
            l_src, r_src = seq[pos_src]
            if l_src != src:
                continue
            overlap = all(
                min(sa[1], da[1] + e) > max(sa[0], da[0] - e)
                for sa, da, e in zip(r_src, r_dst, ext)
            )
            assert not overlap, (
                f"{label}: src slice {r_src} runs after dependent "
                f"dst slice {r_dst}"
            )


def _pairwise_conflicts(specs):
    """Every ordered conflicting loop pair, *unpruned*: (src, dst, offsets).

    RAW carries the destination's read stencil, WAR the source's, WAW
    none — the full relation a legal schedule must respect, independent
    of whatever pruning ``build_dependence_graph`` applies.
    """
    out = []
    for j, sj in enumerate(specs):
        for i, si in enumerate(specs[:j]):
            for rj in sj.accesses:
                for ri in si.accesses:
                    if ri.ref != rj.ref:
                        continue
                    if ri.writes and rj.reads:
                        out.append((i, j, rj.offsets))
                    if ri.reads and rj.writes:
                        out.append((i, j, ri.offsets))
                    if ri.writes and rj.writes:
                        out.append((i, j, ()))
    return out


class TestSchedulerProperties:
    @given(chain=chains())
    @settings(max_examples=60, deadline=None)
    def test_exact_once_coverage(self, chain):
        """Each loop's tile entries partition its iteration space exactly."""
        specs, tile = chain
        schedule = build_tile_schedule(specs, tile_shape=tile)
        covered_loops = set()
        for group in schedule.groups:
            if not group.fused:
                covered_loops.update(group.loops)  # executed whole: trivially exact
                continue
            for local, chain_idx in enumerate(group.loops):
                spec = specs[chain_idx]
                lo = [r[0] for r in spec.ranges]
                shape = tuple(r[1] - r[0] for r in spec.ranges)
                count = np.zeros(shape, dtype=np.int32)
                for t in group.tiles:
                    for entry in t:
                        if entry.loop != local:
                            continue
                        idx = tuple(
                            slice(a - o, b - o)
                            for (a, b), o in zip(entry.ranges, lo)
                        )
                        count[idx] += 1
                assert count.min() == 1 and count.max() == 1, (
                    f"loop {chain_idx}: coverage counts {np.unique(count)}"
                )
                covered_loops.add(chain_idx)
        assert covered_loops == set(range(len(specs)))

    @given(chain=chains())
    @settings(max_examples=60, deadline=None)
    def test_dependence_edges_respected(self, chain):
        """No tile entry of a dependent loop executes before an entry of its
        source loop whose points it can reach through the edge's offsets."""
        specs, tile = chain
        schedule = build_tile_schedule(specs, tile_shape=tile)
        for group in schedule.groups:
            if not group.fused or group.graph is None:
                continue
            # flat execution sequence: (local loop index, ranges), in order
            seq = [(e.loop, e.ranges) for t in group.tiles for e in t]
            ndim = len(specs[group.loops[0]].ranges)
            for edge in group.graph.edges:
                ext = [
                    max((abs(p[d]) for p in edge.offsets), default=0)
                    for d in range(ndim)
                ]
                _assert_no_reachable_inversion(
                    seq, edge.src, edge.dst, ext,
                    f"edge {edge.src}->{edge.dst} ({edge.kind}, ext {ext})",
                )

    @given(chain=chains())
    @settings(max_examples=60, deadline=None)
    def test_all_pairwise_conflicts_respected(self, chain):
        """Same legality check as above, but against the *unpruned*
        pairwise conflict relation instead of the graph the schedule was
        built from — a pruning rule that drops a needed constraint (e.g.
        a far reader's wide stencil before a later write) cannot hide
        behind its own graph here."""
        specs, tile = chain
        schedule = build_tile_schedule(specs, tile_shape=tile)
        for group in schedule.groups:
            if not group.fused:
                continue
            gspecs = [specs[i] for i in group.loops]
            seq = [(e.loop, e.ranges) for t in group.tiles for e in t]
            ndim = len(gspecs[0].ranges)
            for src, dst, offsets in _pairwise_conflicts(gspecs):
                ext = [
                    max((abs(p[d]) for p in offsets), default=0)
                    for d in range(ndim)
                ]
                _assert_no_reachable_inversion(
                    seq, src, dst, ext, f"pair {src}->{dst} (ext {ext})"
                )

    @given(chain=chains())
    @settings(max_examples=30, deadline=None)
    def test_program_order_within_tiles(self, chain):
        specs, tile = chain
        schedule = build_tile_schedule(specs, tile_shape=tile)
        for group in schedule.groups:
            for t in group.tiles:
                local = [e.loop for e in t]
                assert local == sorted(local)

    def test_inc_reduction_never_fuses(self):
        specs = [
            LoopSpec(ranges=((0, 16),), accesses=(
                AccessRecord("a", True, True, ((0,),)),), fusable=True,
                block_id="b"),
            LoopSpec(ranges=((0, 16),), accesses=(
                AccessRecord("a", True, False, ((0,),)),), fusable=False,
                block_id="b"),
            LoopSpec(ranges=((0, 16),), accesses=(
                AccessRecord("a", True, True, ((0,),)),), fusable=True,
                block_id="b"),
        ]
        schedule = build_tile_schedule(specs, tile_shape=(4,))
        assert all(
            not g.fused for g in schedule.groups if 1 in g.loops
        )

    def test_cross_block_loops_split_groups(self):
        acc = (AccessRecord("a", True, True, ((0,),)),)
        specs = [
            LoopSpec(ranges=((0, 16),), accesses=acc, block_id="left"),
            LoopSpec(ranges=((0, 16),), accesses=acc, block_id="right"),
        ]
        schedule = build_tile_schedule(specs, tile_shape=(4,))
        assert not any(g.fused for g in schedule.groups)


class TestDependenceGraphPruning:
    """The pruning in build_dependence_graph must never drop a constraint
    that is not carried point-wise by an explicit edge chain."""

    def test_war_fans_out_to_all_prior_readers(self):
        """Regression (review): two readers with different stencils, no
        intervening write, then a writer — both stencils must reach the
        graph, or max_extent under-computes the tile skew."""
        g = build_dependence_graph([
            [AccessRecord("a", True, False, ((-2,), (2,)))],
            [AccessRecord("a", True, False, ((0,),))],
            [AccessRecord("a", False, True, ((0,),))],
        ])
        war = {(e.src, e.dst): e.offsets for e in g.edges if e.kind == "war"}
        assert set(war) == {(0, 2), (1, 2)}
        assert war[(0, 2)] == ((-2,), (2,))
        assert g.max_extent(1) == (2,)

    def test_war_stops_after_most_recent_writer(self):
        """Readers behind the last writer stay pruned: each holds its own
        WAR edge to that writer, which chains forward centre-to-centre."""
        g = build_dependence_graph([
            [AccessRecord("a", True, False, ((-2,),))],
            [AccessRecord("a", False, True, ((0,),))],
            [AccessRecord("a", True, False, ((1,),))],
            [AccessRecord("a", False, True, ((0,),))],
        ])
        war = {(e.src, e.dst) for e in g.edges if e.kind == "war"}
        assert war == {(0, 1), (2, 3)}

    def test_read_write_loop_joins_war_fanout(self):
        """A read-write loop terminates the fan-out but contributes its
        own read's WAR edge first."""
        g = build_dependence_graph([
            [AccessRecord("a", True, False, ((2,),))],
            [AccessRecord("a", True, True, ((0,),))],
            [AccessRecord("a", False, True, ((0,),))],
        ])
        war = {(e.src, e.dst) for e in g.edges if e.kind == "war"}
        assert war == {(0, 1), (1, 2)}


# ---------------------------------------------------------------------------
# flush semantics: every observation point drains the queue
# ---------------------------------------------------------------------------


class TestFlushSemantics:
    def _queued(self):
        blk, u, v = _chain_setup()
        with swap(lazy=True):
            _queue_chain(blk, u, v)
        assert lazy_mod.queued_loops() == 4
        return blk, u, v

    def _eager_reference(self):
        blk, u, v = _chain_setup()
        _queue_chain(blk, u, v)
        return u.interior.copy(), v.interior.copy()

    def test_dat_data_read_flushes(self):
        ref_u, _ = self._eager_reference()
        _, u, v = self._queued()
        h = u.halo_depth
        got = u.data[h:-h, h:-h]  # .data access is the observation point
        assert lazy_mod.queued_loops() == 0
        np.testing.assert_array_equal(got, ref_u)

    def test_dat_interior_read_flushes(self):
        ref_u, _ = self._eager_reference()
        _, u, v = self._queued()
        np.testing.assert_array_equal(u.interior, ref_u)
        assert lazy_mod.queued_loops() == 0

    def test_unrelated_dat_read_flushes(self):
        # any data observation drains the whole thread queue, even a dat the
        # queued loops never touch: ordering stays trivially correct
        blk, u, v = self._queued()
        w = ops.Dat(blk, (4, 4), name="w")
        _ = w.data
        assert lazy_mod.queued_loops() == 0

    def test_dat_data_write_flushes(self):
        _, u, v = self._queued()
        u.data = np.zeros_like(u.data)
        assert lazy_mod.queued_loops() == 0

    def test_reduction_value_flushes(self):
        blk, u, v = _chain_setup()
        total_eager = ops.Reduction("inc")

        def summing(a, t):
            t.inc(a[0, 0])

        r = [(1, 23), (1, 23)]
        ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                     backend="vec")
        ops.par_loop(summing, blk, r, v(ops.READ), total_eager, backend="vec")
        expect = total_eager.value

        blk2, u2, v2 = _chain_setup()
        total = ops.Reduction("inc")
        with swap(lazy=True):
            ops.par_loop(smooth, blk2, r, u2(ops.READ, ops.S2D_5PT),
                         v2(ops.WRITE), backend="vec")
            ops.par_loop(summing, blk2, r, v2(ops.READ), total, backend="vec")
            assert lazy_mod.queued_loops() == 2
            assert total.value == expect  # the read is the flush point
        assert lazy_mod.queued_loops() == 0

    def test_timing_report_flushes_and_footers(self):
        c = PerfCounters()
        with counters_scope(c), swap(lazy=True):
            blk, u, v = _chain_setup()
            _queue_chain(blk, u, v)
            assert lazy_mod.queued_loops() == 4
            text = timing_report(c)
        assert lazy_mod.queued_loops() == 0
        assert "lazy:" in text
        assert "fused groups" in text
        assert "chain cache" in text

    def test_checkpoint_trigger_flushes(self):
        from repro.checkpoint.manager import CheckpointManager

        _, u, v = self._queued()
        mgr = CheckpointManager()
        mgr.trigger()
        assert lazy_mod.queued_loops() == 0
        mgr.finalize()

    def test_op2_par_loop_flushes(self):
        from repro import op2

        _, u, v = self._queued()
        nodes = op2.Set(8, "nodes")
        x = op2.Dat(nodes, 1, np.zeros(8), name="x")
        k = op2.Kernel(lambda a: None, name="noop",
                       vec_func=lambda a: np.multiply(a, 1.0, out=a))
        op2.par_loop(k, nodes, x(op2.RW), backend="vec")
        assert lazy_mod.queued_loops() == 0

    def test_observer_install_drains_queue(self):
        """Installing an observer is an observation point: loops queued
        before the install execute *unobserved* (eager execution would
        have run them before the observer existed), so the observer sees
        exactly the eager event stream from installation onwards."""
        from repro.common.profiling import add_loop_observer, remove_loop_observer

        ref_u, _ = self._eager_reference()
        blk, u, v = self._queued()
        seen = []

        def obs(event):
            seen.append(event.name)

        add_loop_observer(obs)
        try:
            assert lazy_mod.queued_loops() == 0
            assert seen == []
            np.testing.assert_array_equal(u.interior, ref_u)
        finally:
            remove_loop_observer(obs)

    def test_cross_thread_observer_forces_whole_loop_replay(self):
        """A global observer installed from another thread cannot drain
        this thread's queue; the flush falls back to whole-loop replay so
        the observer still sees per-loop events in eager order."""
        from repro.common.profiling import add_loop_observer, remove_loop_observer

        ref_u, _ = self._eager_reference()
        blk, u, v = self._queued()
        seen = []

        def obs(event):
            seen.append(event.name)

        t = threading.Thread(target=add_loop_observer, args=(obs,))
        t.start()
        t.join()
        try:
            assert lazy_mod.queued_loops() == 4
            np.testing.assert_array_equal(u.interior, ref_u)
        finally:
            remove_loop_observer(obs)
        assert seen == ["smooth", "accum", "smooth", "accum"]

    def test_observed_loops_never_queue(self):
        from repro.common.profiling import add_loop_observer, remove_loop_observer

        blk, u, v = _chain_setup()
        seen = []

        def obs(event):
            seen.append(event.name)

        add_loop_observer(obs)
        try:
            with swap(lazy=True):
                _queue_chain(blk, u, v, steps=1)
                assert lazy_mod.queued_loops() == 0  # executed eagerly
        finally:
            remove_loop_observer(obs)
        assert seen == ["smooth", "accum"]

    def test_queue_limit_forces_flush(self):
        blk, u, v = _chain_setup()
        with swap(lazy=True, lazy_queue_limit=6):
            for _ in range(5):
                _queue_chain(blk, u, v, steps=1)
            # 10 loops queued against a limit of 6: at least one forced flush
            assert lazy_mod.queued_loops() < 6
            lazy_mod.flush("end")

    def test_seq_backend_never_queues(self):
        blk, u, v = _chain_setup()
        with swap(lazy=True):
            ops.par_loop(smooth, blk, [(1, 23), (1, 23)],
                         u(ops.READ, ops.S2D_5PT), v(ops.WRITE), backend="seq")
            assert lazy_mod.queued_loops() == 0

    def test_flush_error_drops_rest_of_queue(self):
        blk, u, v = _chain_setup()

        def boom(a, b):
            raise RuntimeError("kernel exploded")

        with swap(lazy=True):
            r = [(1, 23), (1, 23)]
            ops.par_loop(boom, blk, r, u(ops.READ), v(ops.WRITE), backend="vec")
            ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                         backend="vec")
            with pytest.raises(RuntimeError, match="kernel exploded"):
                _ = v.interior
        # the failing flush dropped the tail; nothing left queued
        assert lazy_mod.queued_loops() == 0

    def test_lazy_scope_flushes_on_exit(self):
        ref_u, _ = self._eager_reference()
        blk, u, v = _chain_setup()
        with lazy_mod.lazy_scope():
            _queue_chain(blk, u, v)
            assert lazy_mod.queued_loops() == 4
        assert lazy_mod.queued_loops() == 0
        np.testing.assert_array_equal(u.interior, ref_u)


class TestSpmdAndServices:
    def test_rank_return_flushes(self):
        """Loops queued by a rank body land before run_spmd returns."""
        holders = {}

        def main(comm):
            blk, u, v = _chain_setup(seed=comm.rank)
            _queue_chain(blk, u, v)
            holders[comm.rank] = u
            # no observation before return: the executor's rank_return
            # flush point is the only thing landing these loops

        with swap(lazy=True):
            run_spmd(4, main)
        assert lazy_mod.ACTIVE == 0
        for rank, u in holders.items():
            ref_blk, ref_u, ref_v = _chain_setup(seed=rank)
            _queue_chain(ref_blk, ref_u, ref_v)
            np.testing.assert_array_equal(u.interior, ref_u.interior)

    def test_dead_rank_abandons_queue(self):
        """A rank dying mid-chain drops its queued tail without executing
        it and without leaking the global queue count."""

        def main(comm):
            blk, u, v = _chain_setup()
            _queue_chain(blk, u, v)
            if comm.rank == 1:
                raise RuntimeError("injected rank death")

        with swap(lazy=True), pytest.raises(RuntimeError, match="rank 1 failed"):
            run_spmd(2, main)
        assert lazy_mod.ACTIVE == 0

    def test_composes_with_resilient_driver(self, tmp_path):
        """run_resilient_spmd under a lazy-configured process: checkpoint
        observers force eager behaviour, faults still recover, results
        match the eager run."""
        from repro.resilience.driver import run_resilient_spmd
        from repro.resilience.faults import FaultPlan
        from repro.resilience.jobs import AirfoilJob

        job = AirfoilJob(2, 5, nx=10, ny=6)
        with swap(lazy=True):
            res = run_resilient_spmd(
                2, job, ckpt_dir=tmp_path, frequency=8,
                plan=FaultPlan().kill(1, at_loop=12),
            )
        assert res.restarts == 1
        assert lazy_mod.ACTIVE == 0

        job2 = AirfoilJob(2, 5, nx=10, ny=6)
        ref = run_resilient_spmd(
            2, job2, ckpt_dir=tmp_path / "ref", frequency=8,
            plan=FaultPlan().kill(1, at_loop=12),
        )
        np.testing.assert_equal(res.results, ref.results)

    def test_serve_job_result_flushes_warm_sessions(self, tmp_path):
        """An ops-based servable app under lazy mode: the scheduler's
        result-side flush lands queued loops, warm-session resets stay
        bitwise, and back-to-back jobs agree."""
        import asyncio

        from repro.serve import JobSpec, ServeService
        from repro.serve.session import AppAdapter, register_app

        class DiffusionAdapter(AppAdapter):
            name = "lazy-diffusion"

            def build(self, spec):
                blk, u, v = _chain_setup(n=16, seed=3)
                return {"blk": blk, "u": u, "v": v}

            def run(self, comm, state, spec):
                _queue_chain(state["blk"], state["u"], state["v"], n=16,
                             steps=spec.iterations)
                # return without observing: the scheduler must flush
                return None

            def datasets(self, rank, state):
                return {"u": state["u"], "v": state["v"]}

        register_app(DiffusionAdapter())

        def spec():
            return JobSpec(
                app="lazy-diffusion", iterations=2,
                preemptible=False, checkpoint_frequency=0,
            )

        async def _serve():
            service = ServeService(workers=1, ckpt_dir=tmp_path / "ckpt")
            async with service:
                a = await service.submit(spec())
                await service.result(a, timeout=60)
                b = await service.submit(spec())
                await service.result(b, timeout=60)
                return service.status(a), service.status(b)

        with swap(lazy=True):
            st_a, st_b = asyncio.run(_serve())
        assert st_a["state"] == st_b["state"] == "completed"
        assert lazy_mod.ACTIVE == 0


# ---------------------------------------------------------------------------
# chain-schedule cache
# ---------------------------------------------------------------------------


class TestChainCache:
    def test_repeat_chain_hits(self):
        c = PerfCounters()
        blk, u, v = _chain_setup()
        with counters_scope(c), swap(lazy=True):
            for _ in range(3):
                _queue_chain(blk, u, v, steps=1)
                lazy_mod.flush("step")
        assert c.chain_misses == 1
        assert c.chain_hits == 2
        assert c.chain_hit_rate == pytest.approx(2 / 3)

    def test_factory_kernels_share_schedule(self):
        """Kernels re-created every step (baking dt into a closure) must hit:
        the cache keys on kernel *code*, not closure values."""

        def make_step(dt):
            def stepk(a, b):
                b[0, 0] = a[0, 0] + dt * a[1, 0]

            return stepk

        c = PerfCounters()
        blk, u, v = _chain_setup()
        r = [(1, 23), (1, 23)]
        with counters_scope(c), swap(lazy=True):
            for step in range(4):
                k = make_step(0.1 / (step + 1))  # fresh closure every step
                ops.par_loop(k, blk, r, u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                             backend="vec")
                ops.par_loop(accum, blk, r, v(ops.READ), u(ops.RW),
                             backend="vec")
                lazy_mod.flush("step")
        assert c.chain_misses == 1
        assert c.chain_hits == 3

    def test_dat_replacement_invalidates(self):
        """A new Dat draws a new token: same code, different chain key."""
        c = PerfCounters()
        blk, u, v = _chain_setup()
        with counters_scope(c), swap(lazy=True):
            _queue_chain(blk, u, v, steps=1)
            lazy_mod.flush("a")
            v2 = ops.Dat(blk, (24, 24), halo_depth=2, name="v")  # replacement
            r = [(1, 23), (1, 23)]
            ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT),
                         v2(ops.WRITE), backend="vec")
            ops.par_loop(accum, blk, r, v2(ops.READ), u(ops.RW), backend="vec")
            lazy_mod.flush("b")
        assert c.chain_misses == 2
        assert c.chain_hits == 0

    def test_range_change_invalidates(self):
        c = PerfCounters()
        blk, u, v = _chain_setup()
        with counters_scope(c), swap(lazy=True):
            _queue_chain(blk, u, v, steps=1)
            lazy_mod.flush("a")
            r = [(2, 22), (2, 22)]  # different iteration ranges
            ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v(ops.WRITE),
                         backend="vec")
            ops.par_loop(accum, blk, r, v(ops.READ), u(ops.RW), backend="vec")
            lazy_mod.flush("b")
        assert c.chain_misses == 2

    def test_cache_is_bounded(self):
        blk, u, v = _chain_setup()
        with swap(lazy=True, chain_cache_size=2):
            for shift in range(4):
                r = [(1, 20 + shift), (1, 20 + shift)]
                ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT),
                             v(ops.WRITE), backend="vec")
                ops.par_loop(accum, blk, r, v(ops.READ), u(ops.RW),
                             backend="vec")
                lazy_mod.flush("step")
        stats = lazy_mod.chain_cache_stats()
        assert stats["size"] <= 2
        assert stats["evictions"] >= 2

    def test_stats_shape(self):
        stats = lazy_mod.chain_cache_stats()
        assert set(stats) == {"size", "hits", "misses", "evictions"}
