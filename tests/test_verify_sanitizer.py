"""Access-descriptor sanitizer: mis-declared kernels must be caught.

Each test builds a deliberately wrong kernel — a READ argument that is
written, a WRITE that reads its old value, an INC that overwrites instead
of incrementing, writes outside the declared footprint or stencil — and
asserts the sanitizer raises a :class:`DescriptorViolation` naming the
loop and the offending argument.  The real proxy apps must run clean.
"""

import numpy as np
import pytest

from repro import op2, ops
from repro.common.config import get_config
from repro.common.counters import PerfCounters
from repro.common.errors import DescriptorViolation, StencilMismatchError
from repro.common.profiling import counters_scope
from repro.verify import sanitized


def make_sets(n=12, m=8):
    rng = np.random.default_rng(7)
    elems = op2.Set(n, "elems")
    nodes = op2.Set(m, "nodes")
    e2n = op2.Map(elems, nodes, 2, rng.integers(0, m, size=(n, 2)), name="e2n")
    src = op2.Dat(elems, 1, data=rng.random((n, 1)) + 1.0, name="src")
    dst = op2.Dat(elems, 1, data=np.zeros((n, 1)), name="dst")
    acc = op2.Dat(nodes, 1, data=rng.random((m, 1)), name="acc")
    return elems, nodes, e2n, src, dst, acc


class TestOp2Violations:
    def test_read_arg_written_seq(self):
        elems, nodes, e2n, src, dst, acc = make_sets()

        def bad(s, d):
            s[0] = 99.0  # writes its READ argument

        k = op2.Kernel(bad, name="writes_read_arg")
        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), dst(op2.WRITE), backend="seq")
        assert exc.value.loop == "writes_read_arg"
        assert exc.value.arg_index == 0
        assert exc.value.kind == "read-arg-written"

    def test_read_arg_written_vec(self):
        elems, nodes, e2n, src, dst, acc = make_sets()
        k = op2.Kernel(
            lambda s, d: None,
            name="vec_writes_read",
            vec_func=lambda s, d: (s.__setitem__(slice(None), 0.0),
                                   d.__setitem__(slice(None), 1.0)),
        )
        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), dst(op2.WRITE), backend="vec")
        assert exc.value.kind == "read-arg-written"
        assert "writes_read" in str(exc.value) or exc.value.loop == "vec_writes_read"

    def test_write_reads_old_value(self):
        elems, nodes, e2n, src, dst, acc = make_sets()
        dst.data[:] = 7.0

        def bad(s, d):
            d[0] = s[0] + d[0]  # declared WRITE, but reads the old value

        k = op2.Kernel(bad, name="impure_write",
                       vec_func=lambda s, d: np.copyto(d, s + d))
        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), dst(op2.WRITE), backend="vec")
        assert exc.value.loop == "impure_write"
        assert exc.value.arg_index == 1
        assert exc.value.kind == "write-reads-old-value"

    def test_partial_write_of_declared_footprint(self):
        elems, nodes, e2n, src, dst, acc = make_sets()

        def bad(s, d):
            pass  # declared WRITE but never writes

        def bad_vec(s, d):
            pass

        k = op2.Kernel(bad, name="unwritten_write", vec_func=bad_vec)
        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), dst(op2.WRITE), backend="vec")
        assert exc.value.kind == "write-reads-old-value"
        assert exc.value.arg_index == 1

    def test_inc_that_overwrites(self):
        elems, nodes, e2n, src, dst, acc = make_sets()

        def bad(s, d):
            d[0] = s[0]  # declared INC, assigns instead of incrementing

        k = op2.Kernel(bad, name="assigning_inc")
        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), dst(op2.INC), backend="seq")
        assert exc.value.loop == "assigning_inc"
        assert exc.value.arg_index == 1
        assert exc.value.kind == "inc-not-increment"

    def test_inc_global_that_depends_on_value(self):
        elems, nodes, e2n, src, dst, acc = make_sets()
        g = op2.Global(1, 1.0, name="total")

        def bad(s, gv):
            gv[0] = s[0]  # overwrites the running reduction

        k = op2.Kernel(bad, name="assigning_global")
        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), g(op2.INC), backend="seq")
        assert exc.value.kind == "inc-not-increment"
        assert exc.value.arg_index == 1

    def test_write_outside_declared_map_column(self):
        # a map whose slot-0 column never targets the last node: a kernel
        # that writes that node anyway escapes its declared footprint
        n, m = 12, 8
        elems = op2.Set(n, "elems")
        nodes = op2.Set(m, "nodes")
        vals = np.stack([np.arange(n) % (m - 1), np.arange(n) % m], axis=1)
        e2n = op2.Map(elems, nodes, 2, vals, name="e2n")
        src = op2.Dat(elems, 1, data=np.ones((n, 1)), name="src")
        acc = op2.Dat(nodes, 1, data=np.zeros((m, 1)), name="acc")
        outside_row = m - 1

        def bad(s, a):
            a[0] += s[0]
            acc.data[outside_row, 0] += 1.0  # bypasses the declared slot

        k = op2.Kernel(bad, name="escapes_footprint")
        with sanitized(shadow=False):
            with pytest.raises(DescriptorViolation) as exc:
                op2.par_loop(k, elems, src(op2.READ), acc(op2.INC, e2n, 0),
                             backend="seq")
        assert exc.value.loop == "escapes_footprint"
        assert exc.value.kind == "write-outside-footprint"
        assert outside_row in exc.value.indices

    def test_clean_indirect_inc_passes(self):
        elems, nodes, e2n, src, dst, acc = make_sets()

        def good(s, a0, a1):
            a0[0] += s[0]
            a1[0] -= s[0]

        def good_vec(s, a0, a1):
            a0[:] += s
            a1[:] -= s

        k = op2.Kernel(good, name="good_flux", vec_func=good_vec)
        for backend in ("seq", "vec", "openmp", "cuda"):
            with sanitized():
                op2.par_loop(k, elems, src(op2.READ),
                             acc(op2.INC, e2n, 0), acc(op2.INC, e2n, 1),
                             backend=backend)

    def test_counters_record_sanitized_loops(self):
        elems, nodes, e2n, src, dst, acc = make_sets()
        # np.copyto works on both the seq scalar views and the vec arrays;
        # the scalar func must be real — the shadow pair executes it on seq
        k = op2.Kernel(lambda s, d: np.copyto(d, s), name="copy",
                       vec_func=lambda s, d: np.copyto(d, s))
        counters = PerfCounters()
        with counters_scope(counters), sanitized():
            op2.par_loop(k, elems, src(op2.READ), dst(op2.WRITE), backend="vec")
        assert counters.loops_sanitized == 1
        assert counters.shadow_runs == 2

    def test_off_by_default(self):
        assert get_config().verify_descriptors is False
        elems, nodes, e2n, src, dst, acc = make_sets()

        def bad(s, d):
            d[0] = s[0] + d[0]

        k = op2.Kernel(bad, name="unchecked",
                       vec_func=lambda s, d: np.copyto(d, s + d))
        op2.par_loop(k, elems, src(op2.READ), dst(op2.WRITE), backend="vec")


def make_block(n=6, m=5):
    block = ops.Block(2, "b")
    u = ops.Dat(block, (n, m), halo_depth=1, name="u")
    v = ops.Dat(block, (n, m), halo_depth=1, name="v")
    u.interior[...] = np.arange(n * m, dtype=float).reshape(n, m)
    return block, u, v, [(0, n), (0, m)]


class TestOpsViolations:
    def test_access_outside_declared_stencil(self):
        block, u, v, r = make_block()

        def bad(uv, vv):
            vv[0, 0] = uv[1, 0]  # S2D_00 declares only the centre point

        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                ops.par_loop(bad, block, [(0, 5), (0, 5)],
                             u(ops.READ, ops.S2D_00), v(ops.WRITE),
                             name="off_stencil")
        assert exc.value.loop == "off_stencil"
        assert exc.value.arg_index == 0
        assert exc.value.kind == "stencil"
        assert (1, 0) in exc.value.indices

    def test_read_arg_written_via_accessor(self):
        block, u, v, r = make_block()

        def bad(uv, vv):
            uv[0, 0] = 3.0

        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                ops.par_loop(bad, block, r, u(ops.READ, ops.S2D_00),
                             v(ops.WRITE), name="ops_writes_read")
        assert exc.value.kind == "read-arg-written"
        assert exc.value.arg_index == 0

    def test_read_arg_written_bypassing_accessor(self):
        block, u, v, r = make_block()

        def bad(uv, vv):
            vv[0, 0] = uv[0, 0]
            u.interior[0, 0] += 1.0  # sneaks past the accessor

        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                ops.par_loop(bad, block, r, u(ops.READ, ops.S2D_00),
                             v(ops.WRITE), name="ops_sneaky_write")
        assert exc.value.loop == "ops_sneaky_write"
        assert exc.value.kind == "read-arg-written"

    def test_read_only_views_under_guard(self):
        block, u, v, r = make_block()

        def bad(uv, vv):
            view = uv[0, 0]
            view += 1.0  # in-place on the returned array view

        with sanitized():
            with pytest.raises(ValueError, match="read-only"):
                ops.par_loop(bad, block, r, u(ops.READ, ops.S2D_00),
                             v(ops.WRITE), name="ops_inplace", backend="vec")

    def test_write_outside_iteration_range(self):
        block, u, v, r = make_block()

        def bad(uv, vv):
            vv[0, 0] = uv[0, 0]
            v.data[0, 0] = 42.0  # halo corner, outside the loop's range

        with sanitized():
            with pytest.raises(DescriptorViolation) as exc:
                ops.par_loop(bad, block, r, u(ops.READ, ops.S2D_00),
                             v(ops.WRITE), name="ops_escape")
        assert exc.value.kind == "write-outside-footprint"

    def test_clean_stencil_loop_passes(self):
        block, u, v, r = make_block()

        def good(uv, vv):
            vv[0, 0] = 0.25 * (uv[1, 0] + uv[-1, 0] + uv[0, 1] + uv[0, -1])

        inner = [(1, 5), (1, 4)]
        for backend in ("seq", "vec", "tiled"):
            with sanitized():
                ops.par_loop(good, block, inner, u(ops.READ, ops.S2D_5PT),
                             v(ops.WRITE), name="good_stencil", backend=backend)

    def test_plain_check_still_raises_stencil_error(self):
        # outside the sanitizer, check=True keeps its original exception type
        block, u, v, r = make_block()

        def bad(uv, vv):
            vv[0, 0] = uv[1, 0]

        with pytest.raises(StencilMismatchError):
            ops.par_loop(bad, block, [(0, 5), (0, 5)],
                         u(ops.READ, ops.S2D_00), v(ops.WRITE),
                         name="plain_check", check=True)


class TestAppsRunClean:
    def test_airfoil_clean_all_backends(self):
        from repro.apps.airfoil.app import AirfoilApp

        for backend in ("seq", "vec", "openmp", "cuda"):
            app = AirfoilApp(nx=5, ny=4, jitter=0.1, backend=backend)
            with sanitized():
                rms = app.run(1)
            assert np.isfinite(rms)

    def test_cloverleaf_clean(self):
        from repro.apps.cloverleaf import CloverLeafApp

        app = CloverLeafApp(nx=8, ny=8)
        with sanitized():
            summary = app.run(1)
        assert np.isfinite(summary["ke"])

    def test_multiblock_clean(self):
        from repro.apps.multiblock.app import MultiBlockDiffusion

        mb = MultiBlockDiffusion(6, 6)
        mb.uL.interior[...] = 1.0
        with sanitized():
            mb.run(2)
        assert np.isfinite(mb.total())

    def test_sanitized_run_matches_plain_run(self):
        from repro.apps.airfoil.app import AirfoilApp
        from repro.apps.airfoil.mesh import generate_mesh

        plain = AirfoilApp(generate_mesh(5, 4, jitter=0.1))
        r1 = plain.run(2)
        checked = AirfoilApp(generate_mesh(5, 4, jitter=0.1))
        with sanitized():
            r2 = checked.run(2)
        assert r1 == r2
        np.testing.assert_array_equal(plain.mesh.q.data, checked.mesh.q.data)
