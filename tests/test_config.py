"""Runtime configuration: swap scopes and the knobs subsystems honour."""

import numpy as np
import pytest

from repro import ops
from repro.common.config import get_config, swap
from repro.common.errors import StencilMismatchError


class TestSwap:
    def test_override_and_restore(self):
        base = get_config().plan_block_size
        with swap(plan_block_size=7):
            assert get_config().plan_block_size == 7
        assert get_config().plan_block_size == base

    def test_nested(self):
        with swap(verbose=True):
            with swap(plan_block_size=3):
                assert get_config().verbose
                assert get_config().plan_block_size == 3
            assert get_config().verbose

    def test_restores_on_exception(self):
        base = get_config().cuda_block_size
        with pytest.raises(RuntimeError):
            with swap(cuda_block_size=1):
                raise RuntimeError("boom")
        assert get_config().cuda_block_size == base


class TestCheckStencilsKnob:
    def test_global_flag_enables_checking(self):
        blk = ops.Block(2)
        u = ops.Dat(blk, (6, 6), halo_depth=2)
        v = ops.Dat(blk, (6, 6), halo_depth=2)

        def bad(a, b):
            b[0, 0] = a[2, 0]

        # unchecked by default: executes (the access stays within the halo)
        ops.par_loop(bad, blk, [(2, 4), (2, 4)], u(ops.READ, ops.S2D_5PT), v(ops.WRITE))

        with swap(check_stencils=True):
            with pytest.raises(StencilMismatchError):
                ops.par_loop(bad, blk, [(2, 4), (2, 4)],
                             u(ops.READ, ops.S2D_5PT), v(ops.WRITE))

    def test_explicit_check_overrides_global(self):
        blk = ops.Block(2)
        u = ops.Dat(blk, (6, 6), halo_depth=2)
        v = ops.Dat(blk, (6, 6), halo_depth=2)

        def bad(a, b):
            b[0, 0] = a[2, 0]

        with swap(check_stencils=True):
            # check=False wins over the global flag
            ops.par_loop(bad, blk, [(2, 4), (2, 4)],
                         u(ops.READ, ops.S2D_5PT), v(ops.WRITE), check=False)


class TestPlanBlockSizeKnob:
    def test_plan_uses_config_default(self):
        from repro import op2
        from repro.op2.plan import build_plan, clear_plan_cache

        nodes, edges = op2.Set(33), op2.Set(32)
        m = op2.Map(edges, nodes, 2, [[i, i + 1] for i in range(32)])
        acc = op2.Dat(nodes, 1)
        args = [acc(op2.INC, m, 0), acc(op2.INC, m, 1)]
        clear_plan_cache()
        with swap(plan_block_size=8):
            plan = build_plan(edges, args)
        assert plan.block_size == 8
        assert plan.n_blocks == 4
        clear_plan_cache()
