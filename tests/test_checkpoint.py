"""Checkpointing: the Figure-8 analysis, speculation, manager and recovery."""

import numpy as np
import pytest

from repro import op2
from repro.checkpoint import (
    CheckpointManager,
    FileStore,
    MemoryStore,
    RecoveryReplayer,
    best_entry_points,
    chain_from_events,
    decision_table,
    detect_period,
    units_saved_if_entering,
)
from repro.checkpoint.analysis import (
    ChainAccess,
    ChainLoop,
    DatasetFate,
    classify_entry,
    format_table,
)
from repro.common.access import Access
from repro.common.profiling import loop_chain_record


def fig8_chain(outer_iterations: int = 2) -> list[ChainLoop]:
    """The Airfoil loop chain exactly as paper Figure 8 tabulates it."""
    A = Access

    def loop(name, *acc):
        return ChainLoop(name, [ChainAccess(d, dim, a, g) for (d, dim, a, g) in acc])

    inner = [
        loop("adt_calc", ("x", 2, A.READ, False), ("q", 4, A.READ, False),
             ("adt", 1, A.WRITE, False)),
        loop("res_calc", ("x", 2, A.READ, False), ("q", 4, A.READ, False),
             ("adt", 1, A.READ, False), ("res", 4, A.INC, False)),
        loop("bres_calc", ("x", 2, A.READ, False), ("q", 4, A.READ, False),
             ("adt", 1, A.READ, False), ("res", 4, A.INC, False),
             ("bounds", 1, A.READ, False)),
        loop("update", ("q_old", 4, A.READ, False), ("q", 4, A.WRITE, False),
             ("res", 4, A.RW, False), ("rms", 1, A.INC, True)),
    ]
    period = [loop("save_soln", ("q", 4, A.READ, False), ("q_old", 4, A.WRITE, False))] + inner + inner
    return period * outer_iterations


class TestFigure8Analysis:
    def test_units_column_matches_paper(self):
        """The exact 8/12/13/13/8 pattern of Figure 8's last column."""
        chain = fig8_chain(2)
        units = [units_saved_if_entering(chain, i) for i in range(len(chain))]
        assert units == [8, 12, 13, 13, 8, 12, 13, 13, 8] * 2

    def test_entering_at_adt_calc_classification(self):
        """Paper: 'saving q and dropping adt immediately, and then
        subsequently res would be saved ... and q_old when reaching update'."""
        chain = fig8_chain(2)
        fates = classify_entry(chain, 1)  # right before the first adt_calc
        assert fates["q"] is DatasetFate.SAVED
        assert fates["adt"] is DatasetFate.DROPPED
        assert fates["res"] is DatasetFate.SAVED
        assert fates["q_old"] is DatasetFate.SAVED

    def test_never_modified_never_saved(self):
        """Paper: 'Since bounds and x were never modified, they are not saved'."""
        chain = fig8_chain(2)
        fates = classify_entry(chain, 0)
        assert fates["x"] is DatasetFate.NEVER_SAVED
        assert fates["bounds"] is DatasetFate.NEVER_SAVED

    def test_globals_tracked_separately(self):
        fates = classify_entry(fig8_chain(2), 0)
        assert fates["rms"] is DatasetFate.GLOBAL

    def test_best_entry_points_are_save_soln_and_update(self):
        """Paper: wait 'until either save_soln or update are reached'."""
        chain = fig8_chain(2)
        best = best_entry_points(chain)
        names = {chain[i].name for i in best}
        assert names == {"save_soln", "update"}

    def test_non_periodic_pending(self):
        A = Access
        chain = [
            ChainLoop("a", [ChainAccess("d", 2, A.WRITE, False)]),
            ChainLoop("b", [ChainAccess("e", 3, A.READ, False)]),
        ]
        # 'd' is modified but never accessed at/after entry 1 -> pending
        fates = classify_entry(chain, 1, periodic=False)
        assert fates["d"] is DatasetFate.PENDING
        # pending counts conservatively in the units
        assert units_saved_if_entering(chain, 1, periodic=False) == 2

    def test_decision_table_rows(self):
        chain = fig8_chain(1)
        rows = decision_table(chain)
        assert rows[0].loop == "save_soln"
        assert rows[0].accesses["q"] == "R"
        assert rows[0].accesses["q_old"] == "W"
        assert rows[3].accesses["res"] == "I"

    def test_format_table_renders(self):
        text = format_table(fig8_chain(1))
        assert "save_soln" in text and "units" in text


class TestPeriodDetection:
    def test_detects_period(self):
        names = ["a", "b", "c"] * 3
        assert detect_period(names) == 3

    def test_partial_trailing_period_ok(self):
        names = ["a", "b", "c"] * 3 + ["a", "b"]
        assert detect_period(names) == 3

    def test_no_period(self):
        assert detect_period(["a", "b", "c", "d"]) is None

    def test_needs_min_repeats(self):
        assert detect_period(["a", "b", "c"]) is None

    def test_fig8_period_is_nine(self):
        names = [c.name for c in fig8_chain(2)]
        assert detect_period(names) == 9


def _mini_app(q, q_old, rms, ksave, kupd, iters):
    for _ in range(iters):
        op2.par_loop(ksave, q.set, q(op2.READ), q_old(op2.WRITE))
        op2.par_loop(kupd, q.set, q_old(op2.READ), q(op2.WRITE), rms(op2.INC))


def k_save(qv, qo):
    qo[0] = qv[0]


def k_upd(qo, qv, r):
    qv[0] = qo[0] * 0.5
    r[0] += qv[0]


K_SAVE = op2.Kernel(k_save, "save_soln")
K_UPD = op2.Kernel(k_upd, "update")


def fresh_state():
    s = op2.Set(6)
    q = op2.Dat(s, 1, np.arange(6, dtype=float), name="q")
    q_old = op2.Dat(s, 1, name="q_old")
    rms = op2.Global(1, 0.0, name="rms")
    return q, q_old, rms


class TestManager:
    def test_trigger_saves_minimal_set(self):
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 1)
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 2)
        assert store.entry_index == 2
        assert set(store.datasets) == {"q"}
        assert store.dropped == ["q_old"]

    def test_frequency_auto_trigger(self):
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store, frequency=3):
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 4)
        assert store.entry_index == 3

    def test_global_values_recorded_each_write(self):
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 3)
        assert len(store.globals["rms"]) == 3

    def test_saved_units_metric(self):
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 1)
        assert store.saved_units == 1
        assert store.saved_bytes == 6 * 8

    def test_speculative_defers_to_cheap_entry(self):
        """With a periodic chain the speculative manager waits for an entry
        point that drops rather than saves."""

        def k_make(a, b):
            b[0] = a[0] + 1.0

        def k_use(b, a):
            a[0] = b[0] * 0.5

        KM = op2.Kernel(k_make, "make")
        KU = op2.Kernel(k_use, "use")
        s = op2.Set(4)
        a = op2.Dat(s, 1, np.ones(4), name="a")
        b = op2.Dat(s, 1, name="b")

        def one_iter():
            op2.par_loop(KM, s, a(op2.READ), b(op2.WRITE))
            op2.par_loop(KU, s, b(op2.READ), a(op2.WRITE))

        store = MemoryStore()
        with CheckpointManager(store, speculative=True) as mgr:
            for _ in range(3):
                one_iter()
            mgr.trigger()  # armed right before a 'use' loop (saves b)...
            op2.par_loop(KU, s, b(op2.READ), a(op2.WRITE))
            for _ in range(2):
                one_iter()
        # ...but the cheapest entry is before 'make' (a READ, b WRITE:
        # saves a(1) and drops b) or before 'use'; both cost 1 unit here,
        # so just assert the checkpoint completed minimally
        assert store.saved_units == 1


class TestRecovery:
    def test_end_to_end_recovery(self):
        # reference run
        q, q_old, rms = fresh_state()
        _mini_app(q, q_old, rms, K_SAVE, K_UPD, 5)
        ref_q, ref_rms = q.data.copy(), rms.value

        # checkpointed run
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 2)
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 3)

        # crash: state lost; recovery replays from scratch
        q, q_old, rms = fresh_state()
        with RecoveryReplayer(store, {"q": q, "q_old": q_old}, {"rms": rms}):
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 5)
        np.testing.assert_allclose(q.data, ref_q)
        assert rms.value == pytest.approx(ref_rms)

    def test_skipped_loops_do_no_computation(self):
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 2)

        q2, q_old2, rms2 = fresh_state()
        sentinel = q2.data.copy()
        rep = RecoveryReplayer(store, {"q": q2, "q_old": q_old2}, {"rms": rms2})
        rep.install()
        try:
            # only the first loop (index 0 == entry? entry==0 -> restores at once)
            pass
        finally:
            rep.remove()
        np.testing.assert_allclose(q2.data, sentinel)

    def test_missing_dataset_errors(self):
        q, q_old, rms = fresh_state()
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 2)
        q2, q_old2, rms2 = fresh_state()
        with pytest.raises(Exception, match="no live counterpart"):
            with RecoveryReplayer(store, {}, {}):
                _mini_app(q2, q_old2, rms2, K_SAVE, K_UPD, 5)

    def test_store_without_entry_rejected(self):
        with pytest.raises(Exception, match="no checkpoint"):
            RecoveryReplayer(MemoryStore(), {})


class TestFileStore:
    def test_roundtrip(self, tmp_path):
        q, q_old, rms = fresh_state()
        store = FileStore(tmp_path / "ckpt.npz")
        with CheckpointManager(store) as mgr:
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 3)
        store.flush()

        loaded = FileStore.load(tmp_path / "ckpt.npz")
        assert loaded.entry_index == store.entry_index
        assert set(loaded.datasets) == set(store.datasets)
        np.testing.assert_allclose(loaded.datasets["q"], store.datasets["q"])
        assert loaded.dropped == store.dropped

    def test_recovery_from_file(self, tmp_path):
        q, q_old, rms = fresh_state()
        _mini_app(q, q_old, rms, K_SAVE, K_UPD, 4)
        ref_q = q.data.copy()

        q, q_old, rms = fresh_state()
        store = FileStore(tmp_path / "c.npz")
        with CheckpointManager(store) as mgr:
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 2)
            mgr.trigger()
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 2)
        store.flush()

        q, q_old, rms = fresh_state()
        with RecoveryReplayer(FileStore.load(tmp_path / "c.npz"),
                              {"q": q, "q_old": q_old}, {"rms": rms}):
            _mini_app(q, q_old, rms, K_SAVE, K_UPD, 4)
        np.testing.assert_allclose(q.data, ref_q)

    def test_flush_without_entry_rejected(self, tmp_path):
        with pytest.raises(Exception, match="nothing to flush"):
            FileStore(tmp_path / "x.npz").flush()

    def test_full_roundtrip_fields(self, tmp_path):
        """Datasets, ordered global series, entry index and dropped names."""
        store = FileStore(tmp_path / "full.npz")
        store.save_dataset("q", np.arange(12.0).reshape(3, 4))
        store.save_dataset("adt@1", np.ones(3))
        store.drop_dataset("res")
        store.drop_dataset("q_old")
        # record out of order: load must restore ascending loop order
        store.record_global("rms", 7, np.asarray([0.7]))
        store.record_global("rms", 3, np.asarray([0.3]))
        store.record_global("rms", 5, np.asarray([0.5]))
        store.set_entry(9)
        store.flush()

        loaded = FileStore.load(store.path)
        assert loaded.entry_index == 9
        assert sorted(loaded.dropped) == ["q_old", "res"]
        np.testing.assert_array_equal(loaded.datasets["q"], store.datasets["q"])
        np.testing.assert_array_equal(loaded.datasets["adt@1"], store.datasets["adt@1"])
        assert [idx for idx, _ in loaded.globals["rms"]] == [3, 5, 7]
        assert [float(v[0]) for _, v in loaded.globals["rms"]] == [0.3, 0.5, 0.7]

    def test_file_needs_no_pickle(self, tmp_path):
        """The npz holds only plain arrays — loadable with pickle disabled."""
        store = FileStore(tmp_path / "plain.npz")
        store.save_dataset("q", np.zeros(2))
        store.drop_dataset("res")
        store.set_entry(1)
        store.flush()
        with np.load(store.path, allow_pickle=False) as npz:
            # the old flush passed allow_pickle=True *into the payload*,
            # writing a bogus array under that name
            assert "allow_pickle" not in npz.files
            assert npz["dropped"].dtype.kind == "U"  # fixed-width, not object

    def test_empty_dropped_roundtrip(self, tmp_path):
        store = FileStore(tmp_path / "nodrop.npz")
        store.save_dataset("q", np.zeros(2))
        store.set_entry(0)
        store.flush()
        assert FileStore.load(store.path).dropped == []

    def test_flush_is_atomic(self, tmp_path):
        store = FileStore(tmp_path / "atomic.npz")
        store.save_dataset("q", np.zeros(2))
        store.set_entry(0)
        store.flush()
        store.flush()  # re-flush replaces in place
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix != ".npz"]
        assert leftovers == []  # no tmp files survive


class TestChainFromEvents:
    def test_recorded_airfoil_chain_shape(self):
        from repro.apps.airfoil import AirfoilApp

        app = AirfoilApp(nx=6, ny=4)
        with loop_chain_record() as events:
            app.iteration()
        chain = chain_from_events(events)
        names = [c.name for c in chain]
        assert names == [
            "save_soln",
            "adt_calc", "res_calc", "bres_calc", "update",
            "adt_calc", "res_calc", "bres_calc", "update",
        ]
        # the live app's update also reads adt, so its entry costs 9 units
        units = [units_saved_if_entering(chain, i) for i in range(len(chain))]
        assert units == [8, 12, 13, 13, 9, 12, 13, 13, 9]


class TestNeverModifiedRule:
    """Inputs untouched before the checkpoint entry are not saved."""

    def test_unmodified_inputs_not_saved(self):
        def k_use_coords(xv, qv, out):
            out[0] = xv[0] + qv[0]

        KU = op2.Kernel(k_use_coords, "use_coords")
        s = op2.Set(5)
        x = op2.Dat(s, 1, np.ones(5), name="x")  # never written
        q = op2.Dat(s, 1, np.ones(5), name="q")
        out = op2.Dat(s, 1, name="out")

        def k_advance(o, qv):
            qv[0] = o[0] * 0.5

        KA = op2.Kernel(k_advance, "advance")

        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            # one warm-up iteration so the manager observes x is read-only
            op2.par_loop(KU, s, x(op2.READ), q(op2.READ), out(op2.WRITE))
            op2.par_loop(KA, s, out(op2.READ), q(op2.WRITE))
            mgr.trigger()
            op2.par_loop(KU, s, x(op2.READ), q(op2.READ), out(op2.WRITE))
            op2.par_loop(KA, s, out(op2.READ), q(op2.WRITE))
        assert "x" not in store.datasets
        assert "x" in store.dropped
        assert "q" in store.datasets  # modified earlier, read at entry

    def test_airfoil_checkpoint_is_minimal(self):
        """End-to-end: the manager reproduces the figure's 8-unit save set."""
        from repro.apps.airfoil import AirfoilApp

        app = AirfoilApp(nx=8, ny=6)
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            app.run(1)
            mgr.trigger()
            app.run(1)
        assert set(store.datasets) == {"q", "res"}
        assert store.saved_units == 8
        assert {"x", "bound", "q_old", "adt"} <= set(store.dropped)


class TestAnalysisProperties:
    """Property tests on the Figure-8 analysis invariants."""

    from hypothesis import given, settings, strategies as st

    names = st.sampled_from(["d1", "d2", "d3", "d4"])
    accesses = st.sampled_from([Access.READ, Access.WRITE, Access.RW, Access.INC])

    @given(
        chain_spec=st.lists(
            st.lists(st.tuples(names, accesses), min_size=1, max_size=3, unique_by=lambda t: t[0]),
            min_size=1,
            max_size=8,
        ),
        entry=st.integers(0, 7),
    )
    @settings(max_examples=60, deadline=None)
    def test_units_bounded_and_partition_complete(self, chain_spec, entry):
        from repro.checkpoint.analysis import (
            ChainAccess,
            ChainLoop,
            classify_entry,
            datasets_in_chain,
        )

        chain = [
            ChainLoop(f"loop{i}", [ChainAccess(n, 2, a, False) for n, a in accs])
            for i, accs in enumerate(chain_spec)
        ]
        entry = entry % len(chain)
        fates = classify_entry(chain, entry)
        datasets = datasets_in_chain(chain)
        # every dataset receives exactly one fate
        assert set(fates) == set(datasets)
        # units never exceed the total dimensionality
        total = sum(d.dim for d in datasets.values())
        assert 0 <= units_saved_if_entering(chain, entry) <= total

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_periodic_chain_units_are_periodic(self, reps):
        chain = fig8_chain(reps)
        period = 9
        units = [units_saved_if_entering(chain, i) for i in range(len(chain))]
        for i in range(len(chain)):
            assert units[i] == units[i % period]
