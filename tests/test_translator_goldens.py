"""Golden-file tests: generated C for real app kernels must stay stable.

One representative kernel from each proxy app — Airfoil's indirect
``res_calc`` (OP2) and CloverLeaf's pointwise ``ideal_gas`` (OPS) — is run
through every C code generator and compared byte-for-byte against
committed fixtures in ``tests/goldens/``.  An intentional codegen change
is updated with ``pytest --update-goldens`` and reviewed as a fixture
diff; an accidental one fails here.
"""

from pathlib import Path

import pytest

from repro.translator.codegen.cuda_c import CudaDatSpec, MemoryStrategy, generate_cuda
from repro.translator.codegen.mpi_c import generate_mpi_host
from repro.translator.codegen.openmp_c import generate_openmp_c
from repro.translator.frontend import parse_app_source

AIRFOIL_APP = Path(__file__).parent.parent / "src" / "repro" / "apps" / "airfoil" / "app.py"

#: CloverLeaf's EOS update, as the translator sees it in generated form
CLOVERLEAF_SRC = """
ops.par_loop(ideal_gas, block, [(0, nx), (0, ny)],
             density0(ops.READ), energy0(ops.READ),
             pressure(ops.WRITE), soundspeed(ops.WRITE))
"""


def airfoil_res_calc():
    sites = parse_app_source(AIRFOIL_APP.read_text(), filename=str(AIRFOIL_APP))
    return next(s for s in sites if s.kernel == "K_RES_CALC")


def cloverleaf_ideal_gas():
    return parse_app_source(CLOVERLEAF_SRC)[0]


RES_CALC_DATS = [
    CudaDatSpec("x", 2),
    CudaDatSpec("q", 4),
    CudaDatSpec("adt", 1),
    CudaDatSpec("res", 4),
]
IDEAL_GAS_DATS = [
    CudaDatSpec("density0", 1),
    CudaDatSpec("energy0", 1),
    CudaDatSpec("pressure", 1),
    CudaDatSpec("soundspeed", 1),
]


class TestAirfoilGoldens:
    def test_res_calc_openmp(self, golden):
        golden("airfoil_res_calc.openmp.c", generate_openmp_c(airfoil_res_calc()))

    @pytest.mark.parametrize("strategy", list(MemoryStrategy))
    def test_res_calc_cuda(self, golden, strategy):
        code = generate_cuda(airfoil_res_calc(), RES_CALC_DATS, strategy)
        golden(f"airfoil_res_calc.cuda_{strategy.value}.cu", code)

    def test_res_calc_mpi(self, golden):
        golden("airfoil_res_calc.mpi.c", generate_mpi_host(airfoil_res_calc()))


class TestCloverLeafGoldens:
    def test_ideal_gas_openmp(self, golden):
        golden("cloverleaf_ideal_gas.openmp.c", generate_openmp_c(cloverleaf_ideal_gas()))

    def test_ideal_gas_cuda(self, golden):
        code = generate_cuda(cloverleaf_ideal_gas(), IDEAL_GAS_DATS, MemoryStrategy.SOA)
        golden("cloverleaf_ideal_gas.cuda_soa.cu", code)

    def test_ideal_gas_mpi(self, golden):
        golden("cloverleaf_ideal_gas.mpi.c", generate_mpi_host(cloverleaf_ideal_gas()))


class TestGoldenStability:
    def test_generation_is_deterministic(self):
        site = airfoil_res_calc()
        assert generate_openmp_c(site) == generate_openmp_c(airfoil_res_calc())
        a = generate_cuda(site, RES_CALC_DATS, MemoryStrategy.STAGE_NOSOA)
        b = generate_cuda(airfoil_res_calc(), RES_CALC_DATS, MemoryStrategy.STAGE_NOSOA)
        assert a == b
