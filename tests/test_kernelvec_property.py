"""Property test: the kernel vectoriser is semantics-preserving.

Random elementwise kernels are generated (arithmetic over component
subscripts, math calls, min/max, ternaries, local temporaries), loaded as
real source modules (so ``inspect`` sees them), vectorised by the
translator, and executed both ways: looping the scalar original over every
element must equal one call of the generated vector kernel.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.translator.kernelvec import vectorise_kernel

_counter = [0]


def load_kernel(tmpdir: Path, source: str):
    """Write kernel source to a real file and import it (inspect-friendly)."""
    _counter[0] += 1
    name = f"genkernel_{_counter[0]}"
    path = tmpdir / f"{name}.py"
    path.write_text("import math\n\n" + source)
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod.kernel


class ExprGen:
    """Deterministic random expression generator over kernel inputs."""

    def __init__(self, rng: np.random.Generator, n_inputs: int, dim: int):
        self.rng = rng
        self.n_inputs = n_inputs
        self.dim = dim

    def leaf(self) -> str:
        if self.rng.random() < 0.3:
            return f"{self.rng.uniform(-2, 2):.4f}"
        p = self.rng.integers(0, self.n_inputs)
        c = self.rng.integers(0, self.dim)
        return f"a{p}[{c}]"

    def expr(self, depth: int) -> str:
        if depth <= 0:
            return self.leaf()
        choice = self.rng.random()
        left = self.expr(depth - 1)
        right = self.expr(depth - 1)
        if choice < 0.25:
            return f"({left} + {right})"
        if choice < 0.45:
            return f"({left} - {right})"
        if choice < 0.6:
            return f"({left} * {right})"
        if choice < 0.7:
            return f"abs({left})"
        if choice < 0.8:
            return f"min({left}, {right})"
        if choice < 0.88:
            return f"max({left}, {right})"
        if choice < 0.95:
            return f"({left} if {right} > 0.0 else {left} * 0.5)"
        return f"math.sqrt(abs({left}))"


def make_source(seed: int, n_inputs: int, dim: int, n_stmts: int) -> str:
    rng = np.random.default_rng(seed)
    gen = ExprGen(rng, n_inputs, dim)
    params = ", ".join(f"a{i}" for i in range(n_inputs)) + ", out"
    lines = [f"def kernel({params}):"]
    # a couple of local temporaries feeding the outputs
    for t in range(2):
        lines.append(f"    t{t} = {gen.expr(2)}")
    for s in range(n_stmts):
        c = s % dim
        use_temp = rng.random() < 0.5
        extra = f" + t{rng.integers(0, 2)}" if use_temp else ""
        lines.append(f"    out[{c}] = {gen.expr(2)}{extra}")
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def tmpmod(tmp_path_factory):
    return tmp_path_factory.mktemp("genkernels")


@given(
    seed=st.integers(0, 10_000),
    n_inputs=st.integers(1, 3),
    dim=st.integers(1, 4),
    n_elems=st.integers(1, 40),
)
@settings(max_examples=40, deadline=None)
def test_vectorised_equals_elementwise(tmpmod, seed, n_inputs, dim, n_elems):
    source = make_source(seed, n_inputs, dim, n_stmts=dim)
    kernel = load_kernel(tmpmod, source)
    gen = vectorise_kernel(kernel)

    rng = np.random.default_rng(seed + 1)
    inputs = [rng.standard_normal((n_elems, dim)) for _ in range(n_inputs)]
    out_seq = np.zeros((n_elems, dim))
    out_vec = np.zeros((n_elems, dim))

    for e in range(n_elems):
        kernel(*[a[e] for a in inputs], out_seq[e])
    gen.func(*inputs, out_vec)

    np.testing.assert_allclose(out_vec, out_seq, rtol=1e-12, atol=1e-12)


def test_generated_source_compiles_standalone(tmpmod):
    source = make_source(7, 2, 3, 3)
    kernel = load_kernel(tmpmod, source)
    gen = vectorise_kernel(kernel)
    # the emitted source is self-contained modulo np
    ns = {"np": np}
    exec(compile(gen.source, "<gen>", "exec"), ns)
    assert callable(ns[gen.name])
