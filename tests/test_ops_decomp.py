"""Structured-block decomposition: subdomains, halos, distributed loops."""

import numpy as np
import pytest

from repro import ops
from repro.ops.decomp import DecomposedBlock, _split_extents
from repro.ops.tiling import choose_tile_shape, tile_working_set_bytes, tiled_ranges
from repro.simmpi import World, run_spmd


def smooth(a, b):
    b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])


def summing(a, t):
    t.inc(a[0, 0])


def make_problem(nx=16, ny=12):
    blk = ops.Block(2)
    u = ops.Dat(blk, (nx, ny), halo_depth=2, name="u")
    v = ops.Dat(blk, (nx, ny), halo_depth=2, name="v")
    u.interior[...] = np.arange(nx * ny, dtype=float).reshape(nx, ny)
    return blk, u, v


class TestSplitExtents:
    def test_cover_whole_range(self):
        ext = _split_extents(17, 4)
        assert ext[0][0] == 0 and ext[-1][1] == 17
        assert all(ext[i][1] == ext[i + 1][0] for i in range(3))

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in _split_extents(17, 4)]
        assert max(sizes) - min(sizes) <= 1


class TestDecomposition:
    def test_subdomains_tile_the_domain(self):
        blk, u, v = make_problem()
        dec = DecomposedBlock(4, blk, [u, v])
        covered = np.zeros((16, 12), dtype=int)
        for r in range(4):
            sub = dec.subdomains[r]
            covered[
                sub.offset[0] : sub.offset[0] + sub.size[0],
                sub.offset[1] : sub.offset[1] + sub.size[1],
            ] += 1
        assert (covered == 1).all()

    def test_local_dats_initialised_from_global(self):
        blk, u, v = make_problem()
        dec = DecomposedBlock(4, blk, [u, v])
        for r in range(4):
            lb = dec.local(r)
            sub = dec.subdomains[r]
            np.testing.assert_allclose(
                lb.local_dat(u).interior,
                u.interior[
                    sub.offset[0] : sub.offset[0] + sub.size[0],
                    sub.offset[1] : sub.offset[1] + sub.size[1],
                ],
            )

    def test_face_dat_surplus_to_last_rank(self):
        blk = ops.Block(2)
        cell = ops.Dat(blk, (8, 8), name="cell")
        xface = ops.Dat(blk, (9, 8), name="xface")
        dec = DecomposedBlock(4, blk, [cell, xface], global_size=(8, 8))
        sizes_x = [dec.local(r).local_dat(xface).size[0] for r in range(4)]
        assert sum(s for r, s in enumerate(sizes_x) if dec.coords(r)[1] == 0) == 9

    def test_dims_must_cover_ranks(self):
        blk, u, v = make_problem()
        with pytest.raises(Exception):
            DecomposedBlock(4, blk, [u], dims=[3, 2])


class TestDistributedLoops:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_stencil_loop_matches_serial(self, nranks):
        blk, u, v = make_problem()
        ops.par_loop(smooth, blk, [(1, 15), (1, 11)], u(ops.READ, ops.S2D_5PT),
                     v(ops.WRITE))
        ref = v.interior.copy()

        blk2, u2, v2 = make_problem()
        dec = DecomposedBlock(nranks, blk2, [u2, v2])

        def main(comm):
            lb = dec.local(comm.rank)
            lb.par_loop(comm, smooth, [(1, 15), (1, 11)],
                        u2(ops.READ, ops.S2D_5PT), v2(ops.WRITE))
            return lb.gather(comm, v2)

        gathered = run_spmd(nranks, main)[0]
        np.testing.assert_allclose(gathered, ref)

    def test_reduction_combined_across_ranks(self):
        blk, u, v = make_problem()
        dec = DecomposedBlock(4, blk, [u, v])

        def main(comm):
            lb = dec.local(comm.rank)
            t = ops.Reduction("inc")
            lb.par_loop(comm, summing, [(0, 16), (0, 12)], u(ops.READ), t)
            return t.value

        out = run_spmd(4, main)
        assert all(v == pytest.approx(u.interior.sum()) for v in out)

    def test_halo_exchange_messages_counted(self):
        blk, u, v = make_problem()
        dec = DecomposedBlock(4, blk, [u, v])
        world = World(4)

        def main(comm):
            lb = dec.local(comm.rank)
            lb.par_loop(comm, smooth, [(1, 15), (1, 11)],
                        u(ops.READ, ops.S2D_5PT), v(ops.WRITE))

        run_spmd(4, main, world=world)
        assert world.total_counters().halo_exchanges > 0

    def test_rank_outside_range_executes_nothing(self):
        blk, u, v = make_problem()
        dec = DecomposedBlock(4, blk, [u, v], dims=[4, 1])

        def main(comm):
            lb = dec.local(comm.rank)
            # range confined to the first rank's cells
            lb.par_loop(comm, smooth, [(1, 3), (1, 11)],
                        u(ops.READ, ops.S2D_5PT), v(ops.WRITE))
            return float(lb.local_dat(v).interior.sum())

        out = run_spmd(4, main)
        assert out[1] == 0.0 and out[0] != 0.0


class TestTiling:
    def test_tiles_cover_range_exactly(self):
        tiles = tiled_ranges([(0, 10), (0, 7)], (4, 3))
        covered = np.zeros((10, 7), dtype=int)
        for t in tiles:
            covered[t[0][0] : t[0][1], t[1][0] : t[1][1]] += 1
        assert (covered == 1).all()

    def test_single_tile_when_large(self):
        assert len(tiled_ranges([(0, 5)], (100,))) == 1

    def test_working_set(self):
        assert tile_working_set_bytes((8, 8), 3) == 8 * 8 * 3 * 8

    def test_choose_tile_fits_cache(self):
        shape = choose_tile_shape([(0, 1000), (0, 1000)], n_fields=10, cache_bytes=256 * 1024)
        assert tile_working_set_bytes(shape, 10) <= 256 * 1024


class TestDecompositionProperty:
    from hypothesis import given, settings, strategies as st

    @given(
        nx=st.integers(5, 24),
        ny=st.integers(5, 24),
        nranks=st.integers(1, 6),
        seed=st.integers(0, 40),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_stencil_loop_partition_invariant(self, nx, ny, nranks, seed):
        """Any grid size / rank count: decomposed result equals serial."""
        rng = np.random.default_rng(seed)
        init = rng.standard_normal((nx, ny))

        blk = ops.Block(2)
        u = ops.Dat(blk, (nx, ny), halo_depth=2)
        v = ops.Dat(blk, (nx, ny), halo_depth=2)
        u.interior[...] = init
        r = [(1, nx - 1), (1, ny - 1)]
        ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT), v(ops.WRITE))
        ref = v.interior.copy()

        blk2 = ops.Block(2)
        u2 = ops.Dat(blk2, (nx, ny), halo_depth=2)
        v2 = ops.Dat(blk2, (nx, ny), halo_depth=2)
        u2.interior[...] = init
        dec = DecomposedBlock(nranks, blk2, [u2, v2])

        def main(comm):
            lb = dec.local(comm.rank)
            lb.par_loop(comm, smooth, r, u2(ops.READ, ops.S2D_5PT), v2(ops.WRITE))
            return lb.gather(comm, v2)

        gathered = run_spmd(nranks, main)[0]
        np.testing.assert_allclose(gathered, ref, atol=1e-14)
