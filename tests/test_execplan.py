"""Compiled loop executors: equivalence, caching, invalidation, accounting.

The compiled fast path (``repro.op2.execplan`` / ``repro.ops.execplan``)
must be *observationally identical* to the interpreted path it replaces —
bitwise, not just tolerance-close — while amortising validation, gather
index construction, buffer allocation and INC scatter scheduling across
invocations of the same loop site.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2, ops
from repro.apps.airfoil.app import AirfoilApp
from repro.apps.airfoil.mesh import generate_mesh
from repro.apps.cloverleaf import CloverLeafApp
from repro.apps.multiblock.app import MultiBlockDiffusion
from repro.common.config import swap
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.common.report import timing_report
from repro.op2 import execplan as op2_exec
from repro.ops import execplan as ops_exec
from repro.simmpi import run_spmd


def _fresh_caches():
    op2.clear_plan_cache()
    ops.clear_plan_cache()


# -- bitwise equivalence: compiled vs interpreted -----------------------------------


class TestOp2Equivalence:
    @staticmethod
    def _airfoil(backend: str, use_plan: bool):
        _fresh_caches()
        with swap(use_execplan=use_plan):
            app = AirfoilApp(generate_mesh(8, 6, jitter=0.15), backend=backend)
            rms = app.run(2)
        m = app.mesh
        return rms, m.q.data.copy(), m.res.data.copy(), m.adt.data.copy()

    @pytest.mark.parametrize("backend", ["vec", "openmp"])
    def test_airfoil_compiled_is_bitwise(self, backend):
        rms_i, q_i, res_i, adt_i = self._airfoil(backend, False)
        rms_c, q_c, res_c, adt_c = self._airfoil(backend, True)
        assert rms_c == rms_i
        np.testing.assert_array_equal(q_c, q_i)
        np.testing.assert_array_equal(res_c, res_i)
        np.testing.assert_array_equal(adt_c, adt_i)

    def test_distributed_owned_extents_are_bitwise(self):
        # ranks 1-4 exercise the n_elements-restricted owner-compute path
        # and halo staleness propagation through the compiled executor
        def run(nranks: int, use_plan: bool):
            _fresh_caches()
            with swap(use_execplan=use_plan):
                mesh = generate_mesh(10, 8, jitter=0.1)
                app = AirfoilApp(mesh)
                pm = app.build_partitioned(nranks, "block")

                def main(comm):
                    rms = app.run_distributed(comm, pm, 2)
                    return rms, pm.local(comm.rank).gather_dat(comm, mesh.q)

                rms, q = run_spmd(nranks, main)[0]
                return rms, np.asarray(q).copy()

        for nranks in (1, 2, 3, 4):
            rms_i, q_i = run(nranks, False)
            rms_c, q_c = run(nranks, True)
            assert rms_c == rms_i, f"nranks={nranks}"
            np.testing.assert_array_equal(q_c, q_i, err_msg=f"nranks={nranks}")


class TestOpsEquivalence:
    @staticmethod
    def _clover(backend: str, use_plan: bool):
        _fresh_caches()
        with swap(use_execplan=use_plan):
            app = CloverLeafApp(nx=10, ny=8, backend=backend)
            summary = app.run(2)
        st_ = app.st
        return summary, {
            "density": st_.density0.interior.copy(),
            "energy": st_.energy0.interior.copy(),
            "xvel": st_.xvel0.interior.copy(),
            "yvel": st_.yvel0.interior.copy(),
        }

    @pytest.mark.parametrize("backend", ["vec", "tiled"])
    def test_cloverleaf_compiled_is_bitwise(self, backend):
        sum_i, fields_i = self._clover(backend, False)
        sum_c, fields_c = self._clover(backend, True)
        assert sum_c == sum_i
        for key in fields_i:
            np.testing.assert_array_equal(fields_c[key], fields_i[key], err_msg=key)

    @pytest.mark.parametrize("backend", ["vec", "tiled"])
    def test_multiblock_compiled_is_bitwise(self, backend):
        import repro.ops.parloop as opl

        def run(use_plan: bool):
            _fresh_caches()
            initial = np.add.outer(np.arange(16.0), np.sin(np.arange(8.0)))
            prev = opl.get_default_backend()
            opl.set_default_backend(backend)
            try:
                with swap(use_execplan=use_plan):
                    mb = MultiBlockDiffusion(8, 8, initial=initial)
                    mb.run(4)
            finally:
                opl.set_default_backend(prev)
            return mb.solution()

        np.testing.assert_array_equal(run(True), run(False))

    def test_reduction_handles_rebind_per_call(self):
        # apps build a fresh Reduction per invocation; the cached plan must
        # rebind the caller's handle, not fold into the compile-time one
        block = ops.Block(2, "redblk")
        d = ops.Dat(block, (5, 4), initial=np.arange(20.0).reshape(5, 4), name="v")

        def total(v, r):
            r.inc(v[0, 0])

        stats0 = ops_exec.plan_cache_stats()
        results = []
        for _ in range(3):
            r = ops.Reduction("inc", name="total")
            ops.par_loop(total, block, [(0, 5), (0, 4)], d(ops.READ), r, backend="vec")
            results.append(r.value)
        stats1 = ops_exec.plan_cache_stats()
        assert results == [float(np.arange(20.0).sum())] * 3
        assert stats1["misses"] - stats0["misses"] == 1
        assert stats1["hits"] - stats0["hits"] == 2


# -- the INC scatter plan: exact np.add.at association ------------------------------


def _run_inc_loop(cols: list[int], vals: np.ndarray, base: np.ndarray, use_plan: bool):
    _fresh_caches()
    n_edges, n_nodes = len(cols), base.shape[0]
    edges = op2.Set(n_edges, "edges")
    nodes = op2.Set(n_nodes, "nodes")
    e2n = op2.Map(edges, nodes, 1, [[c] for c in cols], "e2n")
    x = op2.Dat(edges, 1, vals.reshape(-1, 1), name="x")
    acc = op2.Dat(nodes, 1, base.reshape(-1, 1).copy(), name="acc")
    k = op2.Kernel(
        lambda v, out: out.__setitem__(0, v[0]),
        "copy_inc",
        vec_func=lambda v, out: out.__setitem__(Ellipsis, v),
    )
    # scatter_min=1 forces the segment plan even on tiny loops
    with swap(use_execplan=use_plan, execplan_scatter_min=1):
        op2.par_loop(k, edges, x(op2.READ), acc(op2.INC, e2n, 0), backend="vec")
    return acc.data[:, 0].copy()


class TestIncScatterPlan:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_segment_scatter_matches_add_at_exactly(self, data):
        n_nodes = data.draw(st.integers(2, 10), label="n_nodes")
        n_edges = data.draw(st.integers(1, 120), label="n_edges")
        # duplicate-heavy on purpose: few targets, many contributions
        cols = data.draw(
            st.lists(st.integers(0, n_nodes - 1), min_size=n_edges, max_size=n_edges),
            label="cols",
        )
        finite = st.floats(-1e8, 1e8, allow_nan=False, allow_infinity=False)
        vals = np.asarray(
            data.draw(st.lists(finite, min_size=n_edges, max_size=n_edges), label="vals")
        )
        base = np.asarray(
            data.draw(st.lists(finite, min_size=n_nodes, max_size=n_nodes), label="base")
        )
        compiled = _run_inc_loop(cols, vals, base, True)
        interpreted = _run_inc_loop(cols, vals, base, False)
        np.testing.assert_array_equal(compiled, interpreted)

    def test_degenerate_segment_falls_back_to_add_at(self):
        # >64 contributions onto one target: the plan must pick the add.at
        # opcode and still match exactly
        rng = np.random.default_rng(7)
        cols = [0] * 200 + [1] * 3
        vals = rng.random(203) * 1e6
        base = rng.random(2)
        np.testing.assert_array_equal(
            _run_inc_loop(cols, vals, base, True),
            _run_inc_loop(cols, vals, base, False),
        )


# -- registry: hits, misses, invalidation, eviction, bounds -------------------------


def _direct_loop_site():
    nodes = op2.Set(16, "nodes")
    x = op2.Dat(nodes, 1, np.arange(16.0), name="x")
    k = op2.Kernel(
        lambda a: a.__setitem__(0, a[0] * 2.0),
        "double",
        vec_func=lambda a: a.__setitem__(Ellipsis, a * 2.0),
    )
    return nodes, x, k


class TestOp2Registry:
    def test_miss_then_hits(self):
        nodes, x, k = _direct_loop_site()
        s0 = op2_exec.plan_cache_stats()
        for _ in range(5):
            op2.par_loop(k, nodes, x(op2.RW), backend="vec")
        s1 = op2_exec.plan_cache_stats()
        assert s1["misses"] - s0["misses"] == 1
        assert s1["hits"] - s0["hits"] == 4
        np.testing.assert_array_equal(x.data[:, 0], np.arange(16.0) * 32.0)

    def test_disabled_by_config(self):
        nodes, x, k = _direct_loop_site()
        s0 = op2_exec.plan_cache_stats()
        with swap(use_execplan=False):
            op2.par_loop(k, nodes, x(op2.RW), backend="vec")
        s1 = op2_exec.plan_cache_stats()
        assert (s1["hits"], s1["misses"]) == (s0["hits"], s0["misses"])

    def test_map_replacement_invalidates(self):
        nodes = op2.Set(4, "nodes")
        edges = op2.Set(3, "edges")
        e2n = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3]], "e2n")
        x = op2.Dat(nodes, 1, np.arange(4.0), name="x")
        s = op2.Dat(edges, 1, np.zeros(3), name="s")
        k = op2.Kernel(
            lambda a, b, out: out.__setitem__(0, a[0] + b[0]),
            "esum",
            vec_func=lambda a, b, out: out.__setitem__(Ellipsis, a + b),
        )

        def run():
            op2.par_loop(k, edges, x(op2.READ, e2n, 0), x(op2.READ, e2n, 1),
                         s(op2.WRITE), backend="vec")

        run()
        run()
        s0 = op2_exec.plan_cache_stats()
        # renumbering-style update: same shape, new values array
        e2n.values = np.array([[3, 2], [2, 1], [1, 0]], dtype=e2n.values.dtype)
        run()
        s1 = op2_exec.plan_cache_stats()
        assert s1["invalidations"] - s0["invalidations"] == 1
        assert s1["misses"] - s0["misses"] == 1
        np.testing.assert_array_equal(s.data[:, 0], [5.0, 3.0, 1.0])

    def test_lru_bound_and_eviction(self):
        nodes = op2.Set(8, "nodes")
        x = op2.Dat(nodes, 1, np.zeros(8), name="x")
        s0 = op2_exec.plan_cache_stats()
        with swap(execplan_cache_size=2):
            for i in range(4):
                k = op2.Kernel(
                    lambda a: a.__setitem__(0, a[0]),
                    f"k{i}",
                    vec_func=lambda a: None,
                )
                op2.par_loop(k, nodes, x(op2.RW), backend="vec")
            s1 = op2_exec.plan_cache_stats()
            assert s1["size"] <= 2
            assert s1["evictions"] - s0["evictions"] >= 2

    def test_clear_plan_cache_empties(self):
        nodes, x, k = _direct_loop_site()
        op2.par_loop(k, nodes, x(op2.RW), backend="vec")
        assert op2_exec.plan_cache_stats()["size"] >= 1
        op2.clear_plan_cache()
        assert op2_exec.plan_cache_stats()["size"] == 0

    def test_written_dats_marked_halo_dirty(self):
        nodes, x, k = _direct_loop_site()
        for _ in range(2):  # miss, then hit: both must mark staleness
            x.halo_dirty = False
            op2.par_loop(k, nodes, x(op2.RW), backend="vec")
            assert x.halo_dirty


class TestOpsRegistry:
    @staticmethod
    def _site():
        block = ops.Block(2, "regblk")
        d = ops.Dat(block, (6, 5), initial=1.5, name="u")

        def scale(u):
            u[0, 0] = u[0, 0] * 2.0

        return block, d, scale

    def test_miss_then_hits(self):
        block, d, scale = self._site()
        s0 = ops_exec.plan_cache_stats()
        for _ in range(4):
            ops.par_loop(scale, block, [(0, 6), (0, 5)], d(ops.RW), backend="vec")
        s1 = ops_exec.plan_cache_stats()
        assert s1["misses"] - s0["misses"] == 1
        assert s1["hits"] - s0["hits"] == 3
        np.testing.assert_array_equal(d.interior, np.full((6, 5), 24.0))

    def test_storage_replacement_invalidates(self):
        # cached views alias dat.data, so replacing the array must recompile
        block, d, scale = self._site()
        ops.par_loop(scale, block, [(0, 6), (0, 5)], d(ops.RW), backend="vec")
        s0 = ops_exec.plan_cache_stats()
        d.data = d.data.copy()
        ops.par_loop(scale, block, [(0, 6), (0, 5)], d(ops.RW), backend="vec")
        s1 = ops_exec.plan_cache_stats()
        assert s1["invalidations"] - s0["invalidations"] == 1
        np.testing.assert_array_equal(d.interior, np.full((6, 5), 6.0))

    def test_equivalent_factory_closures_share_a_plan(self):
        # make_*_kernel(dx, dy) returns a fresh closure per call; equal
        # captured values must map to the same compiled plan
        block = ops.Block(2, "facblk")
        d = ops.Dat(block, (4, 4), initial=1.0, name="w")

        def make_kernel(c):
            def axpy(u):
                u[0, 0] = u[0, 0] + c

            return axpy

        s0 = ops_exec.plan_cache_stats()
        ops.par_loop(make_kernel(2.0), block, [(0, 4), (0, 4)], d(ops.RW),
                     backend="vec", name="axpy")
        ops.par_loop(make_kernel(2.0), block, [(0, 4), (0, 4)], d(ops.RW),
                     backend="vec", name="axpy")
        ops.par_loop(make_kernel(3.0), block, [(0, 4), (0, 4)], d(ops.RW),
                     backend="vec", name="axpy")
        s1 = ops_exec.plan_cache_stats()
        assert s1["hits"] - s0["hits"] == 1
        assert s1["misses"] - s0["misses"] == 2
        np.testing.assert_array_equal(d.interior, np.full((4, 4), 8.0))

    def test_changed_default_argument_recompiles(self):
        # Sod's pdv bakes the timestep in as a default (frac=0.5 * dt); a
        # token that ignored __defaults__ would replay the first step's dt
        block = ops.Block(2, "defblk")
        d = ops.Dat(block, (4, 4), initial=1.0, name="v")

        def step(dt):
            def advance(u, frac=0.5 * dt):
                u[0, 0] = u[0, 0] + frac

            ops.par_loop(advance, block, [(0, 4), (0, 4)], d(ops.RW),
                         backend="vec", name="advance")

        s0 = ops_exec.plan_cache_stats()
        step(1.0)
        step(1.0)
        step(3.0)
        s1 = ops_exec.plan_cache_stats()
        assert s1["hits"] - s0["hits"] == 1
        assert s1["misses"] - s0["misses"] == 2
        np.testing.assert_array_equal(d.interior, np.full((4, 4), 3.5))

    def test_checking_bypasses_compiled_path(self):
        block, d, scale = self._site()
        s0 = ops_exec.plan_cache_stats()
        ops.par_loop(scale, block, [(0, 6), (0, 5)], d(ops.RW), backend="vec",
                     check=True)
        s1 = ops_exec.plan_cache_stats()
        assert (s1["hits"], s1["misses"]) == (s0["hits"], s0["misses"])


# -- counters and timing_report -----------------------------------------------------


class TestPlanCounters:
    def test_hit_rate_after_warmup_exceeds_99_percent(self):
        _fresh_caches()
        counters = PerfCounters()
        with counters_scope(counters), swap(use_execplan=True):
            app = AirfoilApp(generate_mesh(6, 4, jitter=0.1), backend="vec")
            app.run(100)
        assert counters.plan_misses > 0
        assert counters.plan_hit_rate >= 0.99
        report = timing_report(counters)
        assert "execplan:" in report
        assert "hit rate" in report

    def test_report_silent_without_compiled_loops(self):
        counters = PerfCounters()
        with counters_scope(counters), swap(use_execplan=False):
            app = AirfoilApp(generate_mesh(4, 3), backend="vec")
            app.run(1)
        assert "execplan" not in timing_report(counters)
