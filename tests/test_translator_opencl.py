"""OpenCL code generation (the paper's remaining generated target)."""

import pytest

from repro.translator.codegen.cuda_c import CudaDatSpec, MemoryStrategy
from repro.translator.codegen.opencl_c import generate_opencl_host, generate_opencl_kernel
from repro.translator.driver import translate_app
from repro.translator.frontend import parse_app_source


@pytest.fixture
def site():
    return parse_app_source(
        "op2.par_loop(res_calc, edges, coords(op2.READ, m, 0), r(op2.INC, m2, 0))"
    )[0]


class TestKernelGeneration:
    def test_kernel_structure(self, site):
        code = generate_opencl_kernel(site, [CudaDatSpec("coords", 2)])
        assert "__kernel void res_calc_wrapper" in code
        assert "get_global_id(0)" in code
        assert "__global double *coords" in code
        assert "inline void res_calc_user" in code

    def test_soa_strategy(self, site):
        code = generate_opencl_kernel(
            site, [CudaDatSpec("coords", 2)], MemoryStrategy.SOA
        )
        assert "#define OP_ACC_COORDS(x) ((x)*coords_stride)" in code
        assert "const int coords_stride" in code
        assert "&coords[gbl_idx]" in code

    def test_nosoa_strategy(self, site):
        code = generate_opencl_kernel(site, [CudaDatSpec("coords", 2)])
        assert "&coords[2*gbl_idx]" in code

    def test_bounds_guard(self, site):
        code = generate_opencl_kernel(site, [CudaDatSpec("coords", 2)])
        assert "if (gbl_idx >= set_size) return;" in code


class TestHostGeneration:
    def test_host_launch_stub(self, site):
        code = generate_opencl_host(site)
        assert "clSetKernelArg" in code
        assert "clEnqueueNDRangeKernel" in code
        assert 'op_opencl_get_kernel("res_calc_wrapper")' in code
        # one arg-setting line per loop argument plus the size arg
        assert code.count("clSetKernelArg") == len(site.args) + 1

    def test_arg_comments_describe_accesses(self, site):
        code = generate_opencl_host(site)
        assert "READ" in code and "INC" in code


class TestDriverIntegration:
    def test_opencl_target_files(self, tmp_path):
        app = tmp_path / "app.py"
        app.write_text("op2.par_loop(k, s, d(op2.READ))")
        result = translate_app(app, tmp_path / "gen", targets=("opencl",))
        names = {f.name for f in result.files}
        assert "k_kernel.cl" in names
        assert "k_opencl_host.c" in names

    def test_all_targets_together(self, tmp_path):
        app = tmp_path / "app.py"
        app.write_text("op2.par_loop(k, s, d(op2.READ))")
        result = translate_app(app, tmp_path / "gen")
        exts = {f.suffix for f in result.files}
        assert {".py", ".c", ".cu", ".cl", ".json"} <= exts
