"""Partitioners: balance, validity, and quality ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2
from repro.common.errors import PartitionError
from repro.op2.partition import (
    derive_partition,
    derive_source_partition,
    edge_cut,
    element_adjacency,
    partition_block,
    partition_greedy,
    partition_rcb,
    partition_set,
)


def grid_mesh(nx=8, ny=8):
    """Cells + cell2node map + centroids for a structured quad grid."""
    from repro.apps.airfoil.mesh import generate_mesh

    m = generate_mesh(nx, ny)
    coords = m.x.data[m.cell2node.values].mean(axis=1)
    return m, coords


class TestBlock:
    def test_balanced(self):
        a = partition_block(10, 3)
        sizes = np.bincount(a)
        assert sizes.max() - sizes.min() <= 1

    def test_contiguous(self):
        a = partition_block(10, 3)
        assert (np.diff(a) >= 0).all()


class TestRCB:
    def test_covers_all_parts(self):
        m, coords = grid_mesh()
        a = partition_rcb(coords, 4)
        assert set(a) == {0, 1, 2, 3}

    def test_balance(self):
        m, coords = grid_mesh()
        a = partition_rcb(coords, 4)
        sizes = np.bincount(a)
        assert sizes.max() / sizes.min() <= 1.2

    def test_non_power_of_two(self):
        m, coords = grid_mesh()
        a = partition_rcb(coords, 3)
        sizes = np.bincount(a, minlength=3)
        assert (sizes > 0).all()

    def test_spatial_locality_beats_random(self):
        m, coords = grid_mesh()
        rcb = partition_rcb(coords, 4)
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 4, coords.shape[0])
        assert edge_cut(m.cell2node, rcb) < edge_cut(m.cell2node, rand)

    @given(n=st.integers(2, 60), parts=st.integers(1, 8), seed=st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_property_every_element_assigned(self, n, parts, seed):
        if parts > n:
            return
        rng = np.random.default_rng(seed)
        coords = rng.standard_normal((n, 2))
        a = partition_rcb(coords, parts)
        assert a.shape == (n,)
        assert a.min() >= 0 and a.max() < parts
        sizes = np.bincount(a, minlength=parts)
        assert sizes.max() - sizes.min() <= max(1, n // parts)


class TestGreedy:
    def test_grows_connected_regions(self):
        m, _ = grid_mesh(6, 6)
        adj = element_adjacency(m.cell2node)
        a = partition_greedy(adj, 4)
        sizes = np.bincount(a, minlength=4)
        assert sizes.sum() == 36
        assert (sizes > 0).all()

    def test_quality_better_than_random(self):
        m, _ = grid_mesh(6, 6)
        a = partition_greedy(element_adjacency(m.cell2node), 4)
        rng = np.random.default_rng(1)
        rand = rng.integers(0, 4, 36)
        assert edge_cut(m.cell2node, a) <= edge_cut(m.cell2node, rand)


class TestDerive:
    def test_targets_get_min_source_rank(self):
        src, tgt = op2.Set(4), op2.Set(3)
        m = op2.Map(src, tgt, 1, [[0], [0], [1], [2]])
        a = derive_partition(m, np.asarray([3, 1, 2, 0]))
        np.testing.assert_array_equal(a, [1, 2, 0])

    def test_unreferenced_targets_to_rank0(self):
        src, tgt = op2.Set(1), op2.Set(3)
        m = op2.Map(src, tgt, 1, [[1]])
        a = derive_partition(m, np.asarray([2]))
        assert a[0] == 0 and a[2] == 0

    def test_source_partition_from_targets(self):
        src, tgt = op2.Set(2), op2.Set(3)
        m = op2.Map(src, tgt, 2, [[0, 1], [1, 2]])
        a = derive_source_partition(m, np.asarray([2, 0, 1]))
        np.testing.assert_array_equal(a, [0, 0])


class TestPartitionSet:
    def test_block_method(self):
        r = partition_set(12, 4, "block")
        assert r.nparts == 4
        assert r.imbalance() == pytest.approx(1.0)

    def test_rcb_requires_coords(self):
        with pytest.raises(PartitionError):
            partition_set(10, 2, "rcb")

    def test_greedy_requires_map(self):
        with pytest.raises(PartitionError):
            partition_set(10, 2, "greedy")

    def test_too_many_parts(self):
        with pytest.raises(PartitionError):
            partition_set(2, 5)

    def test_unknown_method(self):
        with pytest.raises(PartitionError):
            partition_set(10, 2, "metis")


class TestSpectral:
    def test_balanced_and_complete(self):
        m, _ = grid_mesh(8, 8)
        r = partition_set(m.cells.size, 4, "spectral", map_=m.cell2node)
        sizes = np.bincount(r.assignment, minlength=4)
        assert sizes.sum() == 64
        assert sizes.max() - sizes.min() <= 2

    def test_quality_beats_greedy_and_block(self):
        m, _ = grid_mesh(10, 10)
        from repro.op2.partition import partition_spectral

        spec = partition_spectral(m.cell2node, 4)
        blk = partition_block(m.cells.size, 4)
        assert edge_cut(m.cell2node, spec) <= edge_cut(m.cell2node, blk)

    def test_non_power_of_two(self):
        m, _ = grid_mesh(9, 6)
        r = partition_set(m.cells.size, 3, "spectral", map_=m.cell2node)
        sizes = np.bincount(r.assignment, minlength=3)
        assert (sizes > 0).all()
        assert sizes.max() - sizes.min() <= 2

    def test_requires_map(self):
        with pytest.raises(PartitionError):
            partition_set(10, 2, "spectral")

    def test_tiny_mesh(self):
        m, _ = grid_mesh(2, 2)
        r = partition_set(4, 2, "spectral", map_=m.cell2node)
        assert set(r.assignment) == {0, 1}

    def test_distributed_airfoil_with_spectral(self):
        """Spectral partitions run the full distributed pipeline correctly."""
        from repro.apps.airfoil import AirfoilApp, generate_mesh
        from repro.simmpi import run_spmd

        mesh_s = generate_mesh(10, 8, jitter=0.1)
        serial = AirfoilApp(mesh_s)
        rng = np.random.default_rng(2)
        mesh_s.q.data[:, 0] *= 1.0 + 0.05 * rng.random(mesh_s.cells.size)
        init = mesh_s.q.data.copy()
        rms_ser = serial.run(2)

        mesh_p = generate_mesh(10, 8, jitter=0.1)
        mesh_p.q.data[:] = init
        app = AirfoilApp(mesh_p)
        from repro.op2.halo import build_partitioned_mesh

        assign = partition_set(
            mesh_p.cells.size, 4, "spectral", map_=mesh_p.cell2node
        ).assignment
        pm = build_partitioned_mesh(
            4, mesh_p.cells, assign, mesh_p.all_maps, mesh_p.all_dats, [app.rms]
        )
        rms = run_spmd(4, lambda comm: app.run_distributed(comm, pm, 2))[0]
        assert rms == pytest.approx(rms_ser, rel=1e-12)
