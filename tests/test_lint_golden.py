"""Byte-identity of the syntactic diagnostics across the IR rebase.

PR 8 moved OPL001–OPL007 from a dedicated AST visitor onto the kernel
IR.  The golden file pins their exact output — location, code, context
and message bytes — over the corpus and all six bundled apps; any drift
in the lowering's traversal order or event emission shows up here.
"""

from pathlib import Path

from repro.lint.cli import lint_many, lint_path

REPO = Path(__file__).parents[1]
CORPUS = Path(__file__).parent / "lint_corpus"
GOLDEN = Path(__file__).parent / "goldens" / "lint_opl0xx.txt"

SYNTACTIC = {f"OPL00{i}" for i in range(1, 8)}

ALL_APPS = [
    "repro.apps.airfoil.app",
    "repro.apps.cloverleaf.app",
    "repro.apps.cloverleaf3d.app",
    "repro.apps.sod.app",
    "repro.apps.hydra.app",
    "repro.apps.multiblock.app",
]


def _render() -> str:
    diags = []
    for path in sorted(CORPUS.glob("*.py")):
        diags.extend(lint_path(path).diagnostics)
    diags.extend(lint_many(ALL_APPS).diagnostics)
    kept = [d for d in diags if d.code in SYNTACTIC]
    for d in kept:
        p = Path(d.file).resolve()
        try:
            d.file = str(p.relative_to(REPO))
        except ValueError:
            pass
    kept.sort(key=lambda d: (d.file, d.line, d.code))
    return "".join(d.format(with_hint=False) + "\n" for d in kept)


def test_opl00x_output_is_byte_identical_to_golden():
    assert _render() == GOLDEN.read_text()


def test_golden_covers_every_syntactic_code():
    text = GOLDEN.read_text()
    for code in sorted(SYNTACTIC):
        assert code in text, f"golden lost coverage of {code}"
