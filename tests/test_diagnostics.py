"""Diagnostics: timing reports and distributed dataset dumps."""

import numpy as np
import pytest

from repro import op2, ops
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.common.report import timing_report
from repro.simmpi import run_spmd


def k_scale(v, out):
    out[0] = 2.0 * v[0]


K = op2.Kernel(k_scale, "k_scale", flops_per_elem=1)


class TestTimingReport:
    def _run(self):
        c = PerfCounters()
        s = op2.Set(100)
        v = op2.Dat(s, 1, np.ones(100))
        out = op2.Dat(s, 1)
        with counters_scope(c):
            for _ in range(3):
                op2.par_loop(K, s, v(op2.READ), out(op2.WRITE))
        return c

    def test_contains_loop_row(self):
        text = timing_report(self._run())
        assert "k_scale" in text
        assert "GB/s" in text

    def test_totals_line(self):
        text = timing_report(self._run())
        assert "total" in text

    def test_top_filter(self):
        c = self._run()
        c.loop("other_loop").wall_seconds = 99.0
        text = timing_report(c, top=1)
        assert "other_loop" in text
        assert "k_scale" not in text

    def test_comm_line_when_present(self):
        c = self._run()
        c.record_halo_exchange(4, 4096)
        text = timing_report(c)
        assert "halo exchanges" in text

    def test_airfoil_report_renders(self):
        from repro.apps.airfoil import AirfoilApp

        c = PerfCounters()
        with counters_scope(c):
            AirfoilApp(nx=8, ny=6).run(1)
        text = timing_report(c)
        for loop in ("res_calc", "update", "adt_calc"):
            assert loop in text


class TestDistributedDump:
    def test_op2_dump(self, tmp_path):
        from repro.apps.airfoil import AirfoilApp, generate_mesh
        from repro.op2.halo import dump_dat_distributed

        mesh = generate_mesh(8, 6)
        app = AirfoilApp(mesh)
        pm = app.build_partitioned(3, "block")
        path = tmp_path / "q.npz"

        def main(comm):
            rm = pm.local(comm.rank)
            app.run_distributed(comm, pm, 1)
            dump_dat_distributed(comm, rm, mesh.q, path)

        run_spmd(3, main)
        with np.load(path) as npz:
            assert npz["data"].shape == (mesh.cells.size, 4)
            # matches a serial run
            mesh2 = generate_mesh(8, 6)
            AirfoilApp(mesh2).run(1)
            np.testing.assert_allclose(npz["data"], mesh2.q.data, atol=1e-12)

    def test_ops_dump(self, tmp_path):
        from repro.ops.decomp import DecomposedBlock, dump_dat_distributed

        blk = ops.Block(2)
        u = ops.Dat(blk, (8, 8), halo_depth=1)
        u.interior[...] = np.arange(64.0).reshape(8, 8)
        dec = DecomposedBlock(4, blk, [u])
        path = tmp_path / "u.npz"

        def main(comm):
            dump_dat_distributed(comm, dec.local(comm.rank), u, path)

        run_spmd(4, main)
        with np.load(path) as npz:
            np.testing.assert_array_equal(npz["data"], u.interior)
