"""Performance model: characterisation, prediction and scaling shapes."""

import pytest

from repro.common.counters import LoopRecord, PerfCounters
from repro.machine import (
    HECTOR_XE6_NODE,
    NVIDIA_K20X,
    NVIDIA_K40,
    XEON_E5_2697V2,
)
from repro.machine.catalog import GEMINI
from repro.perfmodel import (
    PlatformConfig,
    ScalingModel,
    characterise,
    characterise_run,
    predict_chain,
    predict_loop,
)
from repro.perfmodel.predict import standard_cpu_configs


def record(name="k", *, bytes_direct=8_000_000, bytes_indirect=0, flops=1_000_000,
           iterations=1_000_000, invocations=10, colours=1):
    """A loop record; byte/flop arguments are per invocation."""
    rec = LoopRecord(name)
    rec.invocations = invocations
    rec.iterations = iterations * invocations
    rec.bytes_read = (bytes_direct + bytes_indirect) * invocations
    rec.bytes_written = 0
    rec.indirect_reads = bytes_indirect * invocations
    rec.flops = flops * invocations
    rec.colours = colours
    return rec


class TestCharacterise:
    def test_traffic_split(self):
        ch = characterise(record(bytes_direct=600, bytes_indirect=400, invocations=1))
        assert ch.traffic.bytes_indirect == pytest.approx(400)
        assert ch.traffic.bytes_direct == pytest.approx(600)

    def test_per_invocation_normalisation(self):
        ch = characterise(record(invocations=10))
        assert ch.traffic.invocations == 10
        assert ch.traffic.flops == pytest.approx(1_000_000)

    def test_kernel_info_overrides(self):
        counters = PerfCounters()
        counters.loops["res_calc"] = record("res_calc")
        chars = characterise_run(
            counters, kernel_info={"res_calc": {"vectorisable": False, "divergence": 0.3}}
        )
        assert not chars["res_calc"].traffic.vectorisable
        assert chars["res_calc"].traffic.divergence == 0.3

    def test_state_bytes_defaults_to_half_traffic_per_element(self):
        ch = characterise(record())
        assert ch.state_bytes == 4  # (8MB / 1M elements) / 2


class TestPredict:
    def test_gpu_beats_cpu_on_bandwidth_bound(self):
        """Fig 2 shape: the K40 wins on the bandwidth-bound Airfoil."""
        ch = characterise(record())
        cpu = predict_loop(PlatformConfig("cpu", XEON_E5_2697V2), ch)
        gpu = predict_loop(PlatformConfig("gpu", NVIDIA_K40, gpu=True), ch)
        assert gpu.seconds < cpu.seconds

    def test_vectorisation_helps_compute_bound(self):
        ch = characterise(record(flops=200_000_000, bytes_direct=800_000))
        novec = predict_loop(PlatformConfig("s", XEON_E5_2697V2, vectorised=False), ch)
        vec = predict_loop(PlatformConfig("v", XEON_E5_2697V2, vectorised=True), ch)
        assert vec.seconds < novec.seconds

    def test_model_factor_applies(self):
        ch = characterise(record())
        base = predict_loop(PlatformConfig("a", XEON_E5_2697V2), ch)
        hybrid = predict_loop(PlatformConfig("b", XEON_E5_2697V2, model_factor=1.05), ch)
        assert hybrid.seconds == pytest.approx(1.05 * base.seconds, rel=1e-6)

    def test_chain_sums_loops(self):
        counters = PerfCounters()
        counters.loops["a"] = record("a")
        counters.loops["b"] = record("b")
        chars = characterise_run(counters)
        total, rows = predict_chain(PlatformConfig("c", XEON_E5_2697V2), chars)
        assert total == pytest.approx(sum(r.seconds for r in rows))
        assert len(rows) == 2

    def test_standard_ladder_has_four_rungs(self):
        labels = [c.label for c in standard_cpu_configs(XEON_E5_2697V2)]
        assert labels == ["MPI", "MPI vectorized", "MPI+OpenMP", "MPI+OpenMP vectorized"]


class TestScaling:
    def _chars(self):
        # a realistic per-node step: ~160 MB of streamed traffic
        counters = PerfCounters()
        counters.loops["k"] = record(bytes_direct=160_000_000, invocations=100)
        return characterise_run(counters)

    def test_strong_scaling_monotone_then_saturates(self):
        """Fig 4/6 shape: time drops with nodes, efficiency decays."""
        model = ScalingModel(HECTOR_XE6_NODE, GEMINI, dim=2)
        pts = model.strong(self._chars(), 10_000_000, [1, 2, 4, 8, 16, 32], steps=100)
        times = [p.seconds for p in pts]
        assert times == sorted(times, reverse=True)
        eff = ScalingModel.parallel_efficiency(pts)
        assert eff[0] == pytest.approx(1.0)
        assert eff[-1] < eff[0]

    def test_comm_fraction_grows_under_strong_scaling(self):
        model = ScalingModel(HECTOR_XE6_NODE, GEMINI, dim=2)
        pts = model.strong(self._chars(), 10_000_000, [2, 64], steps=100)
        assert pts[1].comm_fraction > pts[0].comm_fraction

    def test_weak_scaling_nearly_flat(self):
        """Paper: <5% degradation weak scaling on CPUs."""
        model = ScalingModel(HECTOR_XE6_NODE, GEMINI, dim=2)
        pts = model.weak(self._chars(), 1_000_000, [1, 4, 16, 64, 256], steps=100)
        eff = ScalingModel.parallel_efficiency(pts, weak=True)
        assert eff[-1] > 0.9

    def test_gpu_strong_scaling_tails_off_sooner(self):
        """Paper: 'the GPU execution does not strong scale very well'."""
        counters = PerfCounters()
        counters.loops["k"] = record(bytes_direct=160_000_000, invocations=100)
        chars = characterise_run(counters)
        cpu = ScalingModel(HECTOR_XE6_NODE, GEMINI, dim=2)
        gpu = ScalingModel(NVIDIA_K20X, GEMINI, dim=2, gpu=True)
        nodes = [1, 64]
        cpu_eff = ScalingModel.parallel_efficiency(
            cpu.strong(chars, 4_000_000, nodes, steps=100)
        )[-1]
        gpu_eff = ScalingModel.parallel_efficiency(
            gpu.strong(chars, 4_000_000, nodes, steps=100)
        )[-1]
        assert gpu_eff < cpu_eff

    def test_halo_calibration(self):
        coeff = ScalingModel.calibrate_halo(400.0, 10_000.0, dim=2)
        assert coeff == pytest.approx(4.0)

    def test_single_node_no_comm(self):
        model = ScalingModel(HECTOR_XE6_NODE, GEMINI)
        pts = model.strong(self._chars(), 1_000_000, [1])
        assert pts[0].comm_seconds == 0.0
