"""OPS data model: blocks, dats, stencils, halos between blocks."""

import numpy as np
import pytest

from repro import ops
from repro.common.errors import APIError


class TestBlock:
    def test_dimensions(self):
        assert ops.Block(2).ndim == 2

    def test_invalid_ndim(self):
        with pytest.raises(APIError):
            ops.Block(4)

    def test_registers_dats(self):
        b = ops.Block(1)
        d = ops.Dat(b, 5)
        assert d in b.dats


class TestStencil:
    def test_points_deduplicated(self):
        s = ops.Stencil(2, [(0, 0), (0, 0), (1, 0)])
        assert len(s.points) == 2

    def test_contains(self):
        assert (0, 1) in ops.S2D_5PT
        assert (1, 1) not in ops.S2D_5PT

    def test_extent(self):
        assert ops.S2D_5PT.extent == ((-1, 1), (-1, 1))

    def test_max_depth(self):
        s = ops.Stencil(2, [(0, 0), (2, 0)])
        assert s.max_depth == 2

    def test_dim_validation(self):
        with pytest.raises(APIError):
            ops.Stencil(2, [(0,)])

    def test_empty_rejected(self):
        with pytest.raises(APIError):
            ops.Stencil(2, [])


class TestDat:
    def test_storage_padded_by_halo(self):
        b = ops.Block(2)
        d = ops.Dat(b, (4, 6), halo_depth=2)
        assert d.data.shape == (8, 10)

    def test_interior_view_is_writable(self):
        b = ops.Block(2)
        d = ops.Dat(b, (3, 3), halo_depth=1)
        d.interior[...] = 5.0
        assert d.data[1:4, 1:4].sum() == 45.0
        assert d.data[0, :].sum() == 0.0

    def test_initial_scalar(self):
        b = ops.Block(1)
        d = ops.Dat(b, 4, initial=2.0)
        np.testing.assert_allclose(d.interior, 2.0)

    def test_initial_array_shape_checked(self):
        b = ops.Block(1)
        with pytest.raises(APIError):
            ops.Dat(b, 4, initial=np.zeros(5))

    def test_region_shifted_view(self):
        b = ops.Block(2)
        d = ops.Dat(b, (4, 4), halo_depth=2)
        d.interior[...] = np.arange(16).reshape(4, 4)
        shifted = d.region([(0, 3), (0, 4)], offset=(1, 0))
        np.testing.assert_array_equal(shifted, d.interior[1:4, :])

    def test_region_respects_halo_bounds(self):
        b = ops.Block(2)
        d = ops.Dat(b, (4, 4), halo_depth=1)
        with pytest.raises(APIError):
            d.region([(0, 4), (0, 4)], offset=(2, 0))

    def test_negative_interior_coords_reach_halo(self):
        b = ops.Block(1)
        d = ops.Dat(b, 4, halo_depth=2)
        v = d.region([(-2, 0)])
        assert v.shape == (2,)

    def test_write_arg_requires_centre_stencil(self):
        b = ops.Block(2)
        d = ops.Dat(b, (4, 4))
        with pytest.raises(APIError, match="centre"):
            d(ops.WRITE, ops.S2D_5PT)

    def test_read_arg_any_stencil(self):
        b = ops.Block(2)
        d = ops.Dat(b, (4, 4))
        arg = d(ops.READ, ops.S2D_5PT)
        assert arg.stencil is ops.S2D_5PT

    def test_default_stencil_is_centre(self):
        b = ops.Block(2)
        d = ops.Dat(b, (4, 4))
        assert d(ops.READ).stencil.writes_only_centre()

    def test_stencil_ndim_checked(self):
        b = ops.Block(1)
        d = ops.Dat(b, 4)
        with pytest.raises(APIError):
            d(ops.READ, ops.S2D_5PT)

    def test_norm(self):
        b = ops.Block(1)
        d = ops.Dat(b, 2, initial=np.asarray([3.0, 4.0]))
        assert d.norm() == pytest.approx(5.0)


class TestInterBlockHalo:
    def _two_blocks(self):
        b1, b2 = ops.Block(2, "left"), ops.Block(2, "right")
        d1 = ops.Dat(b1, (4, 6), halo_depth=2, name="d1")
        d2 = ops.Dat(b2, (4, 6), halo_depth=2, name="d2")
        d1.interior[...] = np.arange(24).reshape(4, 6)
        return d1, d2

    def test_copy_into_ghost_region(self):
        d1, d2 = self._two_blocks()
        h = ops.Halo(d1, d2, [(2, 4), (0, 6)], [(-2, 0), (0, 6)])
        h.apply()
        np.testing.assert_array_equal(
            d2.region([(-2, 0), (0, 6)]), d1.region([(2, 4), (0, 6)])
        )

    def test_shape_mismatch_rejected(self):
        d1, d2 = self._two_blocks()
        with pytest.raises(APIError, match="shapes"):
            ops.Halo(d1, d2, [(0, 2), (0, 6)], [(0, 3), (0, 6)])

    def test_transpose_orientation(self):
        b1, b2 = ops.Block(2), ops.Block(2)
        d1 = ops.Dat(b1, (2, 3), halo_depth=1)
        d2 = ops.Dat(b2, (3, 2), halo_depth=1)
        d1.interior[...] = [[1, 2, 3], [4, 5, 6]]
        h = ops.Halo(d1, d2, [(0, 2), (0, 3)], [(0, 3), (0, 2)], transpose=(1, 0))
        h.apply()
        np.testing.assert_array_equal(d2.interior, [[1, 4], [2, 5], [3, 6]])

    def test_flip_orientation(self):
        b1, b2 = ops.Block(1), ops.Block(1)
        d1 = ops.Dat(b1, 4, halo_depth=1, initial=np.asarray([1.0, 2.0, 3.0, 4.0]))
        d2 = ops.Dat(b2, 4, halo_depth=1)
        h = ops.Halo(d1, d2, [(0, 4)], [(0, 4)], flip=(True,))
        h.apply()
        np.testing.assert_array_equal(d2.interior, [4, 3, 2, 1])

    def test_bad_transpose_rejected(self):
        d1, d2 = self._two_blocks()
        with pytest.raises(APIError, match="permutation"):
            ops.Halo(d1, d2, [(0, 4), (0, 6)], [(0, 4), (0, 6)], transpose=(0, 0))

    def test_halo_group_applies_all(self):
        d1, d2 = self._two_blocks()
        h1 = ops.Halo(d1, d2, [(2, 4), (0, 6)], [(-2, 0), (0, 6)])
        h2 = ops.Halo(d1, d2, [(0, 2), (0, 6)], [(0, 2), (0, 6)])
        grp = ops.HaloGroup([h1, h2], "grp")
        grp.apply()
        assert len(grp) == 2
        np.testing.assert_array_equal(d2.interior[0:2], d1.interior[0:2])
