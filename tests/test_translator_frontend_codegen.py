"""Translator frontend (loop lifting) and code generators (incl. Fig 7)."""

import numpy as np
import pytest

from repro.common.errors import TranslatorError
from repro.translator.codegen.cuda_c import CudaDatSpec, MemoryStrategy, generate_cuda
from repro.translator.codegen.openmp_c import generate_openmp_c
from repro.translator.codegen.python_host import generate_python_module
from repro.translator.driver import translate_app
from repro.translator.frontend import parse_app_full, parse_app_source

APP_SRC = """
from repro import op2

def main(mesh):
    op2.par_loop(K_SAVE, mesh.cells, mesh.q(op2.READ), mesh.qold(op2.WRITE))
    op2.par_loop(K_RES, mesh.edges,
                 mesh.x(op2.READ, mesh.e2n, 0),
                 mesh.x(op2.READ, mesh.e2n, 1),
                 mesh.res(op2.INC, mesh.e2c, 0))
    ops.par_loop(smooth, blk, [(0, n), (0, m)], u(ops.READ), v(ops.WRITE))
"""


class TestFrontend:
    def test_finds_all_loops(self):
        sites = parse_app_source(APP_SRC)
        assert [s.kernel for s in sites] == ["K_SAVE", "K_RES", "smooth"]

    def test_classifies_api(self):
        sites = parse_app_source(APP_SRC)
        assert sites[0].api == "op2"
        assert sites[2].api == "ops"

    def test_arg_extraction(self):
        sites = parse_app_source(APP_SRC)
        res = sites[1]
        assert res.args[0].access == "READ"
        assert res.args[0].map == "mesh.e2n"
        assert res.args[0].idx == "0"
        assert res.args[2].access == "INC"

    def test_direct_vs_indirect(self):
        sites = parse_app_source(APP_SRC)
        assert not sites[0].has_indirection
        assert sites[1].has_indirection

    def test_syntax_error_raises(self):
        with pytest.raises(TranslatorError):
            parse_app_source("def broken(:")

    def test_too_few_args_raises(self):
        with pytest.raises(TranslatorError):
            parse_app_source("op2.par_loop(K)")


class TestFrontendLifting:
    """Aliased imports, keyword arguments, wrappers, unliftable records."""

    def test_module_alias_import(self):
        sites = parse_app_source(
            "import repro.op2 as o2\n"
            "o2.par_loop(K, cells, d(o2.READ))\n"
        )
        assert len(sites) == 1
        assert sites[0].api == "op2"
        assert sites[0].kernel == "K"

    def test_from_import_alias(self):
        sites = parse_app_source(
            "from repro import ops as o\n"
            "o.par_loop(k, blk, [(0, 5)], u(o.READ), v(o.WRITE))\n"
        )
        assert sites[0].api == "ops"
        assert sites[0].ranges == "[(0, 5)]"
        assert [a.access for a in sites[0].args] == ["READ", "WRITE"]

    def test_keyword_arguments(self):
        sites = parse_app_source(
            "op2.par_loop(kernel=K_SAVE, iterset=mesh.cells)"
        )
        assert sites[0].kernel == "K_SAVE"
        assert sites[0].iterset == "mesh.cells"

    def test_name_keyword_becomes_hint(self):
        sites = parse_app_source(
            "ops.par_loop(k, blk, [(0, 5)], u(ops.READ), name='fluxes')"
        )
        assert sites[0].name_hint == "fluxes"
        assert sites[0].display_name == "fluxes"

    def test_distributed_comm_operand_skipped(self):
        sites = parse_app_source(
            "rm.par_loop(comm, K_RES, mesh.cells, q(op2.READ))"
        )
        assert sites[0].kernel == "K_RES"
        assert sites[0].iterset == "mesh.cells"

    def test_loop_wrapper_call_sites_lifted(self):
        src = (
            "from repro import ops\n"
            "class App:\n"
            "    def _loop(self, kernel, ranges, *args, name=None):\n"
            "        ops.par_loop(kernel, self.block, ranges, *args, name=name)\n"
            "    def step(self):\n"
            "        self._loop(k_pdv, self.rng, d(ops.READ), e(ops.WRITE),\n"
            "                   name='pdv')\n"
        )
        sites = parse_app_source(src)
        assert len(sites) == 1  # the wrapper's internal call is not double-counted
        assert sites[0].kernel == "k_pdv"
        assert sites[0].name_hint == "pdv"
        assert sites[0].enclosing == "App.step"
        assert [a.access for a in sites[0].args] == ["READ", "WRITE"]

    def test_starred_descriptors_recorded_not_dropped(self):
        result = parse_app_full(
            "def run(cells, k, descs):\n"
            "    op2.par_loop(k, cells, *descs)\n"
        )
        assert result.sites == []
        (u,) = result.unliftable
        assert u.code == "OPL900"
        assert u.lineno == 2
        assert u.enclosing == "run"
        assert "*args" in u.reason

    def test_double_star_kwargs_recorded(self):
        result = parse_app_full("op2.par_loop(K, s, **extra)")
        assert result.sites == []
        assert result.unliftable[0].code == "OPL900"

    def test_enclosing_and_in_loop_metadata(self):
        src = (
            "def iterate(n):\n"
            "    for _ in range(n):\n"
            "        op2.par_loop(K, s, d(op2.READ))\n"
            "op2.par_loop(K2, s, d(op2.WRITE))\n"
        )
        inner, outer = parse_app_source(src)
        assert inner.enclosing == "iterate" and inner.in_loop
        assert outer.enclosing == "<module>" and not outer.in_loop


class TestCudaCodegen:
    """Paper Fig 7: OP_ACC macros, device user function, wrapper variants."""

    def _site(self):
        return parse_app_source(
            "op2.par_loop(res_calc, mesh.edges, coords(op2.READ, m, 0))"
        )[0]

    def test_nosoa_plain_indexing(self):
        code = generate_cuda(self._site(), [CudaDatSpec("coords", 2)], MemoryStrategy.NOSOA)
        assert "#define OP_ACC_COORDS(x) (x)" in code
        assert "&coords[2*gbl_idx]" in code
        assert "__shared__" not in code

    def test_soa_stride_macro(self):
        code = generate_cuda(self._site(), [CudaDatSpec("coords", 2)], MemoryStrategy.SOA)
        assert "#define OP_ACC_COORDS(x) ((x)*coords_stride)" in code
        assert "__constant__ int coords_stride;" in code
        assert "&coords[gbl_idx]" in code

    def test_staged_shared_memory(self):
        code = generate_cuda(
            self._site(), [CudaDatSpec("coords", 2)], MemoryStrategy.STAGE_NOSOA
        )
        assert "__shared__ double coords_scratch[2 * BLOCK];" in code
        assert "__syncthreads();" in code
        assert "&coords_scratch[2*threadIdx.x]" in code

    def test_device_function_present(self):
        code = generate_cuda(self._site(), [CudaDatSpec("coords", 2)])
        assert "__device__ void res_calc_gpu(double *coords)" in code
        assert "__global__ void res_calc_wrapper" in code

    def test_all_strategies_distinct(self):
        site = self._site()
        dats = [CudaDatSpec("coords", 2)]
        outputs = {s: generate_cuda(site, dats, s) for s in MemoryStrategy}
        assert len(set(outputs.values())) == 3


class TestOpenmpCodegen:
    def test_direct_loop_plain_parallel_for(self):
        site = parse_app_source("op2.par_loop(update, cells, q(op2.RW))")[0]
        code = generate_openmp_c(site)
        assert "#pragma omp parallel for" in code
        assert "op_plan" not in code

    def test_indirect_loop_coloured(self):
        site = parse_app_source(
            "op2.par_loop(res, edges, r(op2.INC, m, 0))"
        )[0]
        code = generate_openmp_c(site)
        assert "op_plan_get" in code
        assert "ncolors" in code


class TestPythonCodegen:
    def test_generated_module_executes_equivalently(self):
        """Generated host code must compute the same as the library."""
        site = parse_app_source(
            "op2.par_loop(inc_k, edges, acc(op2.INC, m, 0), x(op2.READ, m, 1))"
        )[0]
        src = generate_python_module(site)
        namespace = {}
        exec(compile(src, "<gen>", "exec"), namespace)

        n = 6
        conn = np.asarray([[i, i + 1] for i in range(n)])
        x = np.arange(n + 1, dtype=float).reshape(-1, 1)
        acc = np.zeros((n + 1, 1))

        def kernel_vec(a, xs):
            a[:, 0] += xs[:, 0]

        namespace["run"](kernel_vec, [acc, x], [conn[:, 0], conn[:, 1]], n)
        expect = np.zeros(n + 1)
        for i in range(n):
            expect[i] += i + 1
        np.testing.assert_allclose(acc[:, 0], expect)

    def test_header_documents_loop(self):
        site = parse_app_source("op2.par_loop(k, s, d(op2.READ))")[0]
        src = generate_python_module(site)
        assert "Auto-generated" in src


class TestDriver:
    def test_translate_writes_files_and_manifest(self, tmp_path):
        app = tmp_path / "app.py"
        app.write_text(APP_SRC)
        out = tmp_path / "gen"
        result = translate_app(app, out)
        assert set(result.loops) == {"K_SAVE", "K_RES", "smooth"}
        assert (out / "K_RES_kernel.py").exists()
        assert (out / "K_RES_kernel.cu").exists()
        assert (out / "K_RES_omp.c").exists()
        assert (out / "translation_manifest.json").exists()

    def test_target_selection(self, tmp_path):
        app = tmp_path / "app.py"
        app.write_text("op2.par_loop(k, s, d(op2.READ))")
        result = translate_app(app, tmp_path / "gen", targets=("cuda",))
        assert all(str(f).endswith((".cu", ".json")) for f in result.files)

    def test_unknown_target_rejected(self, tmp_path):
        app = tmp_path / "app.py"
        app.write_text("op2.par_loop(k, s, d(op2.READ))")
        with pytest.raises(TranslatorError):
            translate_app(app, tmp_path / "gen", targets=("sycl",))
