"""3-D OPS: blocks, stencils, loops and decomposition in three dimensions."""

import numpy as np
import pytest

from repro import ops
from repro.ops.decomp import DecomposedBlock
from repro.simmpi import run_spmd

S3D_7PT = ops.Stencil(
    3,
    [(0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)],
    "S3D_7PT",
)


def smooth3d(a, b):
    b[0, 0, 0] = (
        a[1, 0, 0] + a[-1, 0, 0] + a[0, 1, 0] + a[0, -1, 0] + a[0, 0, 1] + a[0, 0, -1]
    ) / 6.0


def setup(n=8):
    blk = ops.Block(3, "cube")
    u = ops.Dat(blk, (n, n, n), halo_depth=1, name="u3")
    v = ops.Dat(blk, (n, n, n), halo_depth=1, name="v3")
    u.interior[...] = np.arange(n**3, dtype=float).reshape(n, n, n)
    return blk, u, v


class TestCore:
    def test_storage_shape(self):
        blk, u, v = setup(6)
        assert u.data.shape == (8, 8, 8)

    def test_seq_vec_agree(self):
        blk, u, v = setup(6)
        r = [(1, 5)] * 3
        ops.par_loop(smooth3d, blk, r, u(ops.READ, S3D_7PT), v(ops.WRITE), backend="seq")
        ref = v.interior.copy()
        v.data[:] = 0
        ops.par_loop(smooth3d, blk, r, u(ops.READ, S3D_7PT), v(ops.WRITE), backend="vec")
        np.testing.assert_allclose(v.interior, ref)

    def test_tiled_3d(self):
        blk, u, v = setup(8)
        r = [(1, 7)] * 3
        ops.par_loop(smooth3d, blk, r, u(ops.READ, S3D_7PT), v(ops.WRITE),
                     backend="tiled", tile_shape=(3, 3, 3))
        ref = v.interior.copy()
        v.data[:] = 0
        ops.par_loop(smooth3d, blk, r, u(ops.READ, S3D_7PT), v(ops.WRITE))
        np.testing.assert_allclose(v.interior, ref)

    def test_stencil_checking_3d(self):
        blk, u, v = setup(6)

        def bad(a, b):
            b[0, 0, 0] = a[1, 1, 0]

        from repro.common.errors import StencilMismatchError

        with pytest.raises(StencilMismatchError):
            ops.par_loop(bad, blk, [(1, 3)] * 3, u(ops.READ, S3D_7PT), v(ops.WRITE),
                         check=True)

    def test_reduction_3d(self):
        blk, u, v = setup(5)
        tot = ops.Reduction("inc")

        def summing(a, t):
            t.inc(a[0, 0, 0])

        ops.par_loop(summing, blk, [(0, 5)] * 3, u(ops.READ), tot)
        assert tot.value == pytest.approx(u.interior.sum())


class TestDecomposed3D:
    @pytest.mark.parametrize("nranks", [2, 8])
    def test_matches_serial(self, nranks):
        blk, u, v = setup(8)
        r = [(1, 7)] * 3
        ops.par_loop(smooth3d, blk, r, u(ops.READ, S3D_7PT), v(ops.WRITE))
        ref = v.interior.copy()

        blk2, u2, v2 = setup(8)
        dec = DecomposedBlock(nranks, blk2, [u2, v2])

        def main(comm):
            lb = dec.local(comm.rank)
            lb.par_loop(comm, smooth3d, r, u2(ops.READ, S3D_7PT), v2(ops.WRITE))
            return lb.gather(comm, v2)

        gathered = run_spmd(nranks, main)[0]
        np.testing.assert_allclose(gathered, ref)

    def test_dims_cover_three_axes(self):
        blk, u, v = setup(8)
        dec = DecomposedBlock(8, blk, [u, v])
        assert sorted(dec.dims, reverse=True) == dec.dims
        assert int(np.prod(dec.dims)) == 8


class TestHeatEquation3D:
    def test_explicit_heat_step_converges_to_mean(self):
        """Integration: repeated smoothing relaxes toward the volume mean."""
        blk = ops.Block(3)
        n = 6
        u = ops.Dat(blk, (n, n, n), halo_depth=1)
        v = ops.Dat(blk, (n, n, n), halo_depth=1)
        rng = np.random.default_rng(0)
        u.interior[...] = rng.random((n, n, n))

        def jacobi(a, b):
            b[0, 0, 0] = a[0, 0, 0] + 0.1 * (
                a[1, 0, 0] + a[-1, 0, 0] + a[0, 1, 0] + a[0, -1, 0]
                + a[0, 0, 1] + a[0, 0, -1] - 6.0 * a[0, 0, 0]
            )

        def reflect(dat):
            h = dat.halo_depth
            a = dat.data
            for ax in range(3):
                sl_lo = [slice(None)] * 3
                sl_src = [slice(None)] * 3
                sl_lo[ax] = h - 1
                sl_src[ax] = h
                a[tuple(sl_lo)] = a[tuple(sl_src)]
                sl_hi = [slice(None)] * 3
                sl_src2 = [slice(None)] * 3
                sl_hi[ax] = h + n
                sl_src2[ax] = h + n - 1
                a[tuple(sl_hi)] = a[tuple(sl_src2)]

        before_spread = u.interior.std()
        for _ in range(40):
            reflect(u)
            ops.par_loop(jacobi, blk, [(0, n)] * 3, u(ops.READ, S3D_7PT), v(ops.WRITE))
            u.interior[...] = v.interior
        assert u.interior.std() < 0.2 * before_spread
        # diffusion with reflective walls conserves the mean
        assert u.interior.mean() == pytest.approx(u.interior.mean())
