"""OPS state save/load: exact resume of a CloverLeaf run."""

import numpy as np
import pytest

from repro import ops
from repro.common.errors import APIError
from repro.ops.io import load_state, restore_into, save_state


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        blk = ops.Block(2)
        u = ops.Dat(blk, (5, 4), halo_depth=2, name="u")
        u.interior[...] = np.arange(20.0).reshape(5, 4)
        u.data[0, 0] = -7.0  # halo content must survive too
        save_state(tmp_path / "s.npz", {"u": u})

        blk2 = ops.Block(2)
        restored = load_state(tmp_path / "s.npz", blk2)
        assert restored["u"].size == (5, 4)
        assert restored["u"].halo_depth == 2
        np.testing.assert_array_equal(restored["u"].data, u.data)

    def test_restore_into_existing(self, tmp_path):
        blk = ops.Block(1)
        u = ops.Dat(blk, 6, halo_depth=1, name="u")
        u.interior[...] = 3.0
        save_state(tmp_path / "s.npz", {"u": u})
        u.interior[...] = 0.0
        restore_into(tmp_path / "s.npz", {"u": u})
        np.testing.assert_allclose(u.interior, 3.0)

    def test_shape_mismatch_rejected(self, tmp_path):
        blk = ops.Block(1)
        u = ops.Dat(blk, 6, halo_depth=1, name="u")
        save_state(tmp_path / "s.npz", {"u": u})
        other = ops.Dat(blk, 7, halo_depth=1, name="u2")
        with pytest.raises(APIError, match="shape"):
            restore_into(tmp_path / "s.npz", {"u": other})

    def test_missing_name_rejected(self, tmp_path):
        blk = ops.Block(1)
        u = ops.Dat(blk, 6, name="u")
        save_state(tmp_path / "s.npz", {"u": u})
        with pytest.raises(APIError, match="no dat named"):
            restore_into(tmp_path / "s.npz", {"v": u})

    def test_block_dim_mismatch(self, tmp_path):
        blk = ops.Block(2)
        u = ops.Dat(blk, (4, 4), name="u")
        save_state(tmp_path / "s.npz", {"u": u})
        with pytest.raises(APIError, match="-D"):
            load_state(tmp_path / "s.npz", ops.Block(1))


class TestCloverLeafResume:
    def test_exact_resume(self, tmp_path):
        """Save mid-run, resume in a fresh app, end bit-identical."""
        from repro.apps.cloverleaf import CloverLeafApp
        from repro.apps.cloverleaf.state import FIELD_INFO

        ref = CloverLeafApp(nx=16, ny=12)
        ref.run(6)
        ref_density = ref.st.density0.interior.copy()

        app = CloverLeafApp(nx=16, ny=12)
        app.run(3)
        fields = {name: getattr(app.st, name) for name in FIELD_INFO}
        save_state(tmp_path / "clover.npz", fields)
        dt_at_save = app.dt

        app2 = CloverLeafApp(nx=16, ny=12)
        app2.dt = dt_at_save
        app2.step_count = app.step_count  # sweep order alternates per step
        fields2 = {name: getattr(app2.st, name) for name in FIELD_INFO}
        restore_into(tmp_path / "clover.npz", fields2)
        app2.run(3)
        np.testing.assert_array_equal(app2.st.density0.interior, ref_density)
