"""OP2 data model: sets, maps, dats, globals, consts, args."""

import numpy as np
import pytest

from repro import op2
from repro.common.errors import APIError


class TestSet:
    def test_sizes(self):
        s = op2.Set(10, halo_exec=2, halo_nonexec=3)
        assert len(s) == 10
        assert s.exec_size == 12
        assert s.total_size == 15

    def test_negative_rejected(self):
        with pytest.raises(APIError):
            op2.Set(-1)

    def test_auto_name(self):
        assert op2.Set(1).name.startswith("set_")


class TestMap:
    def test_shape_validation(self):
        a, b = op2.Set(3), op2.Set(5)
        with pytest.raises(APIError):
            op2.Map(a, b, 2, [[0, 1]])  # too few rows

    def test_range_validation(self):
        a, b = op2.Set(2), op2.Set(3)
        with pytest.raises(APIError):
            op2.Map(a, b, 1, [[0], [7]])

    def test_flat_values_reshaped(self):
        a, b = op2.Set(2), op2.Set(4)
        m = op2.Map(a, b, 2, [0, 1, 2, 3])
        assert m.values.shape == (2, 2)

    def test_column(self):
        a, b = op2.Set(2), op2.Set(4)
        m = op2.Map(a, b, 2, [[0, 1], [2, 3]])
        np.testing.assert_array_equal(m.column(1), [1, 3])

    def test_adjacency_pairs(self):
        a, b = op2.Set(2), op2.Set(4)
        m = op2.Map(a, b, 2, [[0, 1], [2, 3]])
        pairs = m.adjacency_pairs()
        assert pairs.shape == (4, 2)
        assert pairs[0].tolist() == [0, 0]


class TestDat:
    def test_allocation_zeroed(self):
        s = op2.Set(3)
        d = op2.Dat(s, 2)
        assert d.data.shape == (3, 2)
        assert not d.data.any()

    def test_1d_data_reshaped(self):
        s = op2.Set(3)
        d = op2.Dat(s, 1, [1.0, 2.0, 3.0])
        assert d.data.shape == (3, 1)

    def test_wrong_shape_rejected(self):
        s = op2.Set(3)
        with pytest.raises(APIError):
            op2.Dat(s, 2, np.zeros((4, 2)))

    def test_data_copied_in(self):
        s = op2.Set(2)
        src = np.ones((2, 1))
        d = op2.Dat(s, 1, src)
        src[:] = 5
        assert d.data[0, 0] == 1.0

    def test_halo_allocation(self):
        s = op2.Set(3, halo_nonexec=2)
        assert op2.Dat(s, 1).data.shape == (5, 1)

    def test_norm_only_over_owned(self):
        s = op2.Set(2, halo_nonexec=1)
        d = op2.Dat(s, 1, [3.0, 4.0, 100.0])
        assert d.norm() == pytest.approx(5.0)

    def test_duplicate_is_deep(self):
        s = op2.Set(2)
        d = op2.Dat(s, 1, [1.0, 2.0])
        d2 = d.duplicate()
        d2.data[:] = 9
        assert d.data[0, 0] == 1.0


class TestGlobal:
    def test_scalar_value(self):
        g = op2.Global(1, 4.5)
        assert g.value == 4.5

    def test_vector_global(self):
        g = op2.Global(3, [1.0, 2.0, 3.0])
        assert g.data.shape == (3,)

    def test_value_requires_dim1(self):
        with pytest.raises(APIError):
            _ = op2.Global(2, [1.0, 2.0]).value

    def test_rw_access_rejected(self):
        g = op2.Global(1, 0.0)
        with pytest.raises(APIError):
            g(op2.RW)


class TestConst:
    def test_readonly(self):
        c = op2.Const(1, 1.4, name="gam")
        with pytest.raises(ValueError):
            c.data[0] = 2.0

    def test_value(self):
        assert op2.Const(1, 1.4).value == 1.4


class TestArgs:
    def _mesh(self):
        nodes, edges = op2.Set(4), op2.Set(3)
        m = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3]])
        x = op2.Dat(nodes, 1)
        return nodes, edges, m, x

    def test_direct_arg(self):
        nodes, edges, m, x = self._mesh()
        arg = x(op2.READ)
        assert arg.is_direct and not arg.is_indirect

    def test_indirect_arg(self):
        nodes, edges, m, x = self._mesh()
        arg = x(op2.READ, m, 0)
        assert arg.is_indirect

    def test_indirect_needs_index(self):
        nodes, edges, m, x = self._mesh()
        with pytest.raises(APIError):
            x(op2.READ, m)

    def test_index_out_of_arity(self):
        nodes, edges, m, x = self._mesh()
        with pytest.raises(APIError):
            x(op2.READ, m, 2)

    def test_map_target_must_match_dat_set(self):
        nodes, edges, m, x = self._mesh()
        wrong = op2.Dat(edges, 1)
        with pytest.raises(APIError):
            wrong(op2.READ, m, 0)

    def test_creates_race_only_for_indirect_writes(self):
        nodes, edges, m, x = self._mesh()
        assert x(op2.INC, m, 0).creates_race
        assert not x(op2.READ, m, 0).creates_race
        assert not x(op2.INC).creates_race

    def test_validate_against_iterset(self):
        nodes, edges, m, x = self._mesh()
        arg = x(op2.READ, m, 0)
        arg.validate_against(edges)  # fine
        with pytest.raises(APIError):
            arg.validate_against(nodes)

    def test_direct_arg_wrong_set(self):
        nodes, edges, m, x = self._mesh()
        with pytest.raises(APIError):
            x(op2.READ).validate_against(edges)

    def test_describe(self):
        nodes, edges, m, x = self._mesh()
        assert "(R)" in x(op2.READ, m, 0).describe()
