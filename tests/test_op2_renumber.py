"""RCM renumbering: locality improves, semantics preserved."""

import numpy as np
import pytest

from repro import op2
from repro.op2.renumber import (
    apply_permutation,
    bandwidth,
    locality_score,
    rcm_permutation,
    renumber_mesh,
)


def scrambled_mesh(n=40, seed=3):
    """A chain mesh with randomly permuted node numbering (poor locality)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n + 1)
    nodes = op2.Set(n + 1)
    edges = op2.Set(n)
    conn = np.asarray([[perm[i], perm[i + 1]] for i in range(n)])
    m = op2.Map(edges, nodes, 2, conn)
    x = op2.Dat(nodes, 1, np.arange(n + 1, dtype=float)[np.argsort(perm)])
    return nodes, edges, m, x


class TestRCM:
    def test_permutation_is_bijection(self):
        _, _, m, _ = scrambled_mesh()
        perm = rcm_permutation(m)
        assert sorted(perm.tolist()) == list(range(m.to_set.total_size))

    def test_improves_locality(self):
        _, _, m, x = scrambled_mesh()
        before = locality_score(m)
        renumber_mesh(m, [x])
        assert locality_score(m) < before

    def test_improves_bandwidth(self):
        _, _, m, x = scrambled_mesh()
        before = bandwidth(m)
        renumber_mesh(m, [x])
        assert bandwidth(m) <= before


class TestApplyPermutation:
    def test_semantics_preserved(self):
        """Gathering x through the map yields identical values after renumbering."""
        _, edges, m, x = scrambled_mesh()
        before = x.data[m.values].copy()
        renumber_mesh(m, [x])
        after = x.data[m.values]
        np.testing.assert_allclose(after, before)

    def test_wrong_set_dat_rejected(self):
        nodes, edges, m, x = scrambled_mesh()
        wrong = op2.Dat(edges, 1)
        with pytest.raises(Exception):
            apply_permutation(rcm_permutation(m), [wrong], [m])

    def test_identity_permutation_noop(self):
        _, _, m, x = scrambled_mesh()
        n = m.to_set.total_size
        before_map = m.values.copy()
        before_x = x.data.copy()
        apply_permutation(np.arange(n), [x], [m])
        np.testing.assert_array_equal(m.values, before_map)
        np.testing.assert_array_equal(x.data, before_x)


class TestAppLevelRenumber:
    def test_airfoil_result_invariant_under_renumbering(self):
        """Renumbering is a pure optimisation: physics must not change."""
        from repro.apps.hydra import HydraApp, generate_hydra_mesh

        a = HydraApp(generate_hydra_mesh(8, 6, jitter=0.1))
        r_plain = a.run(2)

        b = HydraApp(generate_hydra_mesh(8, 6, jitter=0.1))
        b.renumber()
        r_renum = b.run(2)
        assert r_renum == pytest.approx(r_plain, rel=1e-12)
