"""CloverLeaf 3D: 2D-equivalence oracle, conservation, symmetry."""

import numpy as np
import pytest

from repro.apps.cloverleaf import CloverLeafApp
from repro.apps.cloverleaf3d import CloverLeaf3DApp, clover_bm3_state


class TestTwoDEquivalence:
    """A z-uniform 3D problem must reproduce the 2D solver exactly."""

    @pytest.fixture(scope="class")
    def pair(self):
        app2 = CloverLeafApp(nx=12, ny=10)
        app3 = CloverLeaf3DApp(12, 10, 3)
        app3.rotate_all = False  # x/y alternation, z sweep last (a no-op)
        for _ in range(5):
            dt2 = app2.step()
            dt3 = app3.step()
            assert dt3 == pytest.approx(dt2, rel=1e-14)
        return app2, app3

    def test_z_uniformity_preserved(self, pair):
        _, app3 = pair
        d = app3.st.density0.interior
        np.testing.assert_allclose(
            d, np.broadcast_to(d[:, :, :1], d.shape), atol=1e-13
        )

    def test_z_velocity_stays_zero(self, pair):
        _, app3 = pair
        assert np.abs(app3.st.zvel0.interior).max() < 1e-15

    def test_density_matches_2d(self, pair):
        app2, app3 = pair
        np.testing.assert_allclose(
            app3.st.density0.interior[:, :, 0],
            app2.st.density0.interior,
            atol=1e-12,
        )

    def test_energy_matches_2d(self, pair):
        app2, app3 = pair
        np.testing.assert_allclose(
            app3.st.energy0.interior[:, :, 0],
            app2.st.energy0.interior,
            atol=1e-12,
        )

    def test_velocities_match_2d(self, pair):
        app2, app3 = pair
        np.testing.assert_allclose(
            app3.st.xvel0.interior[:, :, 0], app2.st.xvel0.interior, atol=1e-12
        )
        np.testing.assert_allclose(
            app3.st.yvel0.interior[:, :, 0], app2.st.yvel0.interior, atol=1e-12
        )


class TestFull3D:
    def test_mass_exactly_conserved_with_rotating_sweeps(self):
        app = CloverLeaf3DApp(10, 10, 10)
        before = app.field_summary()["mass"]
        app.run(6)
        assert app.field_summary()["mass"] == pytest.approx(before, rel=1e-12)

    def test_fields_stay_finite_and_positive(self):
        app = CloverLeaf3DApp(8, 8, 8)
        app.run(6)
        assert np.isfinite(app.st.density0.interior).all()
        assert (app.st.density0.interior > 0).all()

    def test_xy_swap_symmetry(self):
        """The blast is symmetric under x<->y; the solution stays so to
        splitting error."""
        app = CloverLeaf3DApp(10, 10, 4)
        app.rotate_all = False  # pair the x/y orders
        app.run(6)
        d = app.st.density0.interior
        np.testing.assert_allclose(d, np.transpose(d, (1, 0, 2)), atol=1e-3)

    def test_field_summary_keys(self):
        app = CloverLeaf3DApp(6, 6, 6)
        s = app.run(2)
        assert set(s) == {"volume", "mass", "ie", "pressure"}
        assert s["volume"] == pytest.approx(1000.0)

    def test_state_dats_complete(self):
        st = clover_bm3_state(4, 4, 4)
        assert len(st.dats) == 25
        assert st.density0.size == (4, 4, 4)
        assert st.xvel0.size == (5, 5, 5)
        assert st.vol_flux_z.size == (4, 4, 5)
