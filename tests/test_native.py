"""Native compiled-kernel backend: admission, bitwise parity, degradation.

The native tier (:mod:`repro.native`) compiles certified kernels to C and
slots them under the execplan cache.  These tests gate it the only way
that matters for an active library: **bitwise** against the vec executor
on every proxy app (rank 1 and rank 4), with every degradation path — no
compiler, corrupt cached object, untranslatable kernel, ``REPRO_NATIVE=0``
— falling back to identical results and exactly one fallback record.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import ops, telemetry
from repro.common.config import swap
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.common.report import timing_report
from repro.native import cache as ncache
from repro.native import cgen as ncgen
from repro.simmpi import run_spmd
from repro.verify import diff_backends

#: tests that assert compiled kernels actually ran need a toolchain; on a
#: compiler-free box (the CI no-compiler leg) everything else still runs
#: and proves the graceful-degradation story
requires_cc = pytest.mark.skipif(
    ncache.find_compiler() is None, reason="no C compiler available"
)


@pytest.fixture(autouse=True)
def _native_cache_isolation(tmp_path):
    """Every test compiles into its own disk cache and a fresh memory cache."""
    ncache.clear_memory_cache()
    ncache._reset_compiler_cache()
    with swap(native_cache_dir=str(tmp_path / "natcache")):
        yield
    ncache.clear_memory_cache()
    ncache._reset_compiler_cache()


def _clear_plans():
    from repro.op2.execplan import clear_plan_cache as clear_op2
    from repro.ops.execplan import clear_plan_cache as clear_ops

    clear_op2()
    clear_ops()


def _native_vs_vec(run_fn, *, trace=True):
    """Diff one app run with the native tier on vs off — bitwise, no tolerance.

    Admission happens at plan build, so each mode starts from empty plan
    registries (exactly what a fresh process sees).
    """

    def run(mode):
        _clear_plans()
        with swap(native=(mode == "native")):
            return run_fn()

    return diff_backends(run, ["vec", "native"], reference="vec", trace=trace)


# ---------------------------------------------------------------------------
# differential battery: native == vec on every proxy app, ranks 1 and 4
# ---------------------------------------------------------------------------


class TestDiffBatteryRank1:
    def test_airfoil(self):
        from repro.apps.airfoil.app import AirfoilApp
        from repro.apps.airfoil.mesh import generate_mesh

        def run():
            app = AirfoilApp(generate_mesh(8, 6, jitter=0.1), backend="vec")
            app.run(2)
            m = app.mesh
            return {"q": m.q.data, "qold": m.qold.data, "res": m.res.data,
                    "rms": np.asarray([app.rms.value])}

        _native_vs_vec(run).assert_agree()

    def test_cloverleaf(self):
        from repro.apps.cloverleaf import CloverLeafApp

        def run():
            app = CloverLeafApp(nx=12, ny=10, backend="vec")
            summary = app.run(3)
            st = app.st
            out = {k: np.asarray([v]) for k, v in summary.items()}
            out.update(density=st.density0.interior, energy=st.energy0.interior,
                       xvel=st.xvel0.interior, yvel=st.yvel0.interior)
            return out

        _native_vs_vec(run).assert_agree()

    def test_sod(self):
        from repro.apps.sod.app import SodApp

        def run():
            app = SodApp(n=120, backend="vec")
            for _ in range(20):
                app.step()
            return app.profiles()

        _native_vs_vec(run).assert_agree()

    def test_multiblock(self):
        from repro.apps.multiblock.app import MultiBlockDiffusion
        import repro.ops.parloop as opl

        def run():
            initial = np.add.outer(np.arange(16.0), np.sin(np.arange(8.0)))
            mb = MultiBlockDiffusion(8, 8, initial=initial)
            prev = opl.get_default_backend()
            opl.set_default_backend("vec")
            try:
                mb.run(4)
            finally:
                opl.set_default_backend(prev)
            return {"u": mb.solution()}

        _native_vs_vec(run).assert_agree()

    @requires_cc
    def test_native_loops_actually_ran(self):
        """The battery is vacuous if admission quietly declines everything."""
        from repro.apps.cloverleaf import CloverLeafApp

        _clear_plans()
        counters = PerfCounters()
        with counters_scope(counters), swap(native=True):
            CloverLeafApp(nx=10, ny=8, backend="vec").run(2)
        assert counters.native_calls > 0
        assert counters.native_compiles > 0


class TestDiffBatteryRank4:
    """Rank-4 runs: per-rank plans compile per-rank native loops (each rank
    thread builds its own signatures).  Loop traces interleave across rank
    threads, so only final states are compared — bitwise."""

    def test_airfoil_rank4(self):
        from repro.apps.airfoil.app import AirfoilApp
        from repro.apps.airfoil.mesh import generate_mesh

        def run():
            mesh = generate_mesh(10, 8, jitter=0.1)
            app = AirfoilApp(mesh)
            pm = app.build_partitioned(4, "block")

            def main(comm):
                rms = app.run_distributed(comm, pm, 2)
                return rms, pm.local(comm.rank).gather_dat(comm, mesh.q)

            rms, q = run_spmd(4, main)[0]
            return {"q": q, "rms": np.asarray([rms])}

        _native_vs_vec(run, trace=False).assert_agree()

    def test_cloverleaf_rank4(self):
        from repro.apps.cloverleaf import clover_bm_state
        from repro.apps.cloverleaf.app import DistributedCloverLeafApp
        from repro.ops.decomp import DecomposedBlock

        def run():
            gstate = clover_bm_state(12, 8)
            dec = DecomposedBlock(4, gstate.block, gstate.all_dats,
                                  global_size=(12, 8))

            def main(comm):
                app = DistributedCloverLeafApp(comm, dec, gstate)
                s = app.run(2)
                return s, app.gather_field("density0")

            s, dens = run_spmd(4, main)[0]
            return {"density": dens, **{k: np.asarray([v]) for k, v in s.items()}}

        _native_vs_vec(run, trace=False).assert_agree()

    @pytest.mark.parametrize("app", ["sod", "multiblock"])
    def test_decomposed_stencil_rank4(self, app):
        """sod/multiblock have no distributed driver; their rank-4 leg runs
        an app-shaped stencil+reduction chain through DecomposedBlock."""
        if app == "sod":
            shape, ranges = (64,), [(1, 63)]

            def kern(u, v, t):
                v[0] = 0.25 * (u[-1] + u[1]) + 0.5 * u[0]
                t.min(v[0])

            sten = ops.Stencil(1, [(0,), (-1,), (1,)], "S1D_3PT_T")
        else:
            shape, ranges = (16, 12), [(1, 15), (1, 11)]

            def kern(u, v, t):
                v[0, 0] = 0.25 * (u[1, 0] + u[-1, 0] + u[0, 1] + u[0, -1])
                t.min(v[0, 0])

            sten = ops.S2D_5PT

        def run():
            from repro.ops.decomp import DecomposedBlock

            blk = ops.Block(len(shape))
            u = ops.Dat(blk, shape, halo_depth=2, name="u")
            v = ops.Dat(blk, shape, halo_depth=2, name="v")
            u.interior[...] = np.random.default_rng(7).random(shape)
            dec = DecomposedBlock(4, blk, [u, v])

            def main(comm):
                lb = dec.local(comm.rank)
                t = ops.Reduction("min")
                for _ in range(3):
                    lb.par_loop(comm, kern, ranges, u(ops.READ, sten),
                                v(ops.WRITE), t)
                    lb.par_loop(comm, kern, ranges, v(ops.READ, sten),
                                u(ops.WRITE), t)
                return t.value, lb.gather(comm, u)

            t, gathered = run_spmd(4, main)[0]
            return {"u": gathered, "t": np.asarray([t])}

        _native_vs_vec(run, trace=False).assert_agree()


class TestLazyThroughNative:
    @requires_cc
    def test_lazy_tiles_execute_compiled(self):
        """Queued loops drain through per-tile vec plans; each tile's plan
        carries its own native loop, and the result stays bitwise."""
        from repro.ops import lazy as lazy_mod

        def smooth(a, b):
            b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])

        def accum(b, a):
            a[0, 0] = a[0, 0] + b[0, 0]

        def run(lazy_on: bool):
            _clear_plans()
            lazy_mod.clear_chain_cache()
            blk = ops.Block(2)
            u = ops.Dat(blk, (24, 24), halo_depth=2, name="u")
            v = ops.Dat(blk, (24, 24), halo_depth=2, name="v")
            u.interior[...] = np.random.default_rng(3).random((24, 24))
            r = [(1, 23), (1, 23)]
            counters = PerfCounters()
            with counters_scope(counters), swap(native=True, lazy=lazy_on):
                for _ in range(2):
                    ops.par_loop(smooth, blk, r, u(ops.READ, ops.S2D_5PT),
                                 v(ops.WRITE), backend="vec")
                    ops.par_loop(accum, blk, r, v(ops.READ), u(ops.RW),
                                 backend="vec")
                lazy_mod.flush("test_end")
            return u.interior.copy(), counters

        u_eager, c_eager = run(False)
        u_lazy, c_lazy = run(True)
        np.testing.assert_array_equal(u_eager, u_lazy)
        # the lazy drain itself executed through compiled kernels
        assert c_lazy.native_calls > 0
        assert c_lazy.lazy_flushes > 0


# ---------------------------------------------------------------------------
# graceful degradation: every refusal path falls back to identical results
# ---------------------------------------------------------------------------


def _run_sod_once():
    from repro.apps.sod.app import SodApp

    _clear_plans()
    app = SodApp(n=80, backend="vec")
    for _ in range(5):
        app.step()
    return app.profiles()


class TestDegradation:
    def test_no_compiler_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CC", "none")
        ncache._reset_compiler_cache()
        assert ncache.find_compiler() is None
        with swap(native=True):
            with_native = _run_sod_once()
        monkeypatch.delenv("REPRO_NATIVE_CC")
        ncache._reset_compiler_cache()
        with swap(native=False):
            without = _run_sod_once()
        for k in without:
            np.testing.assert_array_equal(with_native[k], without[k])

    def test_no_compiler_records_one_fallback_per_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CC", "none")
        ncache._reset_compiler_cache()
        blk = ops.Block(1)
        u = ops.Dat(blk, 16, halo_depth=1, name="u")

        def double(a):
            a[0] = a[0] * 2.0

        counters = PerfCounters()
        _clear_plans()
        with counters_scope(counters), swap(native=True), telemetry.tracing() as trc:
            for _ in range(5):
                ops.par_loop(double, blk, [(0, 16)], u(ops.RW), backend="vec")
        # one fallback at plan build, not one per call
        assert counters.native_fallbacks == 1
        assert counters.native_calls == 0
        falls = [e for e in trc.events()
                 if isinstance(e, telemetry.InstantEvent) and e.name == "native.fallback"]
        assert len(falls) == 1
        assert falls[0].attrs["reason"] == "no C compiler available"

    @staticmethod
    def _plant_corrupt_object(source):
        """Put garbage at the cache slot for ``source`` WITHOUT dlopening a
        good object there first — dlopen caches by path in-process, so a
        previously loaded handle would mask the corrupt file entirely."""
        import os

        key = ncache.source_key(source)
        os.makedirs(ncache.cache_dir(), exist_ok=True)
        so = os.path.join(ncache.cache_dir(), f"{key}.so")
        bad = so + ".bad"
        with open(bad, "wb") as f:
            f.write(b"not an ELF object")
        os.replace(bad, so)
        return so

    @requires_cc
    def test_corrupt_cached_object_recompiles(self):
        code = ncgen.generate_ops(_square_kernel, [("dat", True)], 1, "corrupt_t")
        self._plant_corrupt_object(code.source)
        kern, cached = ncache.load_kernel(code.source)
        assert not cached  # recompiled, not loaded stale
        assert kern.make_call is not None

    def test_corrupt_object_without_compiler_raises(self, monkeypatch):
        code = ncgen.generate_ops(_square_kernel, [("dat", True)], 1, "corrupt_nc")
        self._plant_corrupt_object(code.source)
        monkeypatch.setattr(ncache, "find_compiler", lambda: None)
        with pytest.raises(ncache.NativeUnavailable):
            ncache.load_kernel(code.source)

    def test_untranslatable_kernel_falls_back(self):
        """A kernel the certifier declines runs interpreted, same results."""
        blk = ops.Block(1)
        u = ops.Dat(blk, 16, halo_depth=1, name="u")
        u.interior[...] = np.linspace(0.5, 2.0, 16)

        def transcendental(a):
            a[0] = np.exp(a[0])  # exp: NumPy SIMD is not libm -> declined

        counters = PerfCounters()
        _clear_plans()
        with counters_scope(counters), swap(native=True):
            ops.par_loop(transcendental, blk, [(0, 16)], u(ops.RW), backend="vec")
        with_native = u.interior.copy()
        assert counters.native_fallbacks >= 1
        assert counters.native_calls == 0

        u.interior[...] = np.linspace(0.5, 2.0, 16)
        _clear_plans()
        with swap(native=False):
            ops.par_loop(transcendental, blk, [(0, 16)], u(ops.RW), backend="vec")
        np.testing.assert_array_equal(with_native, u.interior)

    def test_config_off_disables_and_counts(self):
        blk = ops.Block(1)
        u = ops.Dat(blk, 16, halo_depth=1, name="u")

        def double(a):
            a[0] = a[0] * 2.0

        counters = PerfCounters()
        _clear_plans()
        with counters_scope(counters), swap(native=False):
            ops.par_loop(double, blk, [(0, 16)], u(ops.RW), backend="vec")
        assert counters.native_calls == 0
        assert counters.native_fallbacks == 1  # reason: disabled

    @requires_cc
    def test_storage_rebind_drops_native_tier(self):
        """Replacing dat.data invalidates the ops plan (identity guards), and
        the rebuilt plan re-admits native against the new storage."""
        blk = ops.Block(1)
        u = ops.Dat(blk, 16, halo_depth=1, name="u")
        u.interior[...] = 1.0

        def double(a):
            a[0] = a[0] * 2.0

        counters = PerfCounters()
        _clear_plans()
        with counters_scope(counters), swap(native=True):
            ops.par_loop(double, blk, [(0, 16)], u(ops.RW), backend="vec")
            u.data = u.data.copy()  # rebind storage under the plan
            ops.par_loop(double, blk, [(0, 16)], u(ops.RW), backend="vec")
        np.testing.assert_array_equal(u.interior, np.full(16, 4.0))
        assert counters.native_calls == 2  # both plans ran natively


def _square_kernel(a):
    a[0] = a[0] * a[0]


# ---------------------------------------------------------------------------
# codegen unit level: exact C idioms the bitwise guarantee rests on
# ---------------------------------------------------------------------------


class TestCodegen:
    def test_power_two_lowers_to_multiply(self):
        def k(a, b):
            b[0] = a[0] ** 2

        code = ncgen.generate_ops(k, [("dat", False), ("dat", True)], 1, "p2")
        assert "* t1" in code.source and "pow(" not in code.source

    def test_min_fold_uses_numpy_select(self):
        def k(a, t):
            t.min(a[0])

        code = ncgen.generate_ops(k, [("dat", False), ("red", "min")], 1, "mn")
        # accumulator keeps ties and propagates NaN: (r < t || r != r) ? r : t
        assert "|| r0 != r0) ? r0 :" in code.source

    def test_closure_scalars_go_through_cv(self):
        dt = 0.125

        def k(a, b):
            b[0] = a[0] * dt

        code = ncgen.generate_ops(k, [("dat", False), ("dat", True)], 1, "cv")
        assert "cv[0]" in code.source
        assert "0.125" not in code.source  # never baked into the text
        assert code.const_names == ("=dt",)

    def test_inc_reduction_declined(self):
        def k(a, t):
            t.inc(a[0])

        with pytest.raises(ncgen.Untranslatable, match="pairwise"):
            ncgen.generate_ops(k, [("dat", False), ("red", "inc")], 1, "inc")

    def test_transcendental_declined(self):
        def k(a, b):
            b[0] = np.sin(a[0])

        with pytest.raises(ncgen.Untranslatable):
            ncgen.generate_ops(k, [("dat", False), ("dat", True)], 1, "sin")

    def test_op2_two_phase_scatter_order(self):
        """Indirect INC: phase A computes into scratch, phase B accumulates
        in element order — the schedule np.add.at is bitwise-equal to."""

        def k(x, r):
            r[0] += x[0]

        code = ncgen.generate_op2(
            k, [("ind", 1, "READ"), ("ind", 1, "INC")], "scat")
        a_phase = code.source.index("S1[e * 1 + 0] = 0.0")
        b_phase = code.source.index("p1[w1 * 1 + 0] += S1[e * 1 + 0]")
        assert a_phase < b_phase
        assert code.scratch_spec == ((1, 1),)

    def test_cache_key_covers_source_and_flags(self):
        k1 = ncache.source_key("int x;")
        assert k1 == ncache.source_key("int x;")
        assert k1 != ncache.source_key("int y;")

    @requires_cc
    def test_warm_cache_loads_without_compiling(self):
        code = ncgen.generate_ops(_square_kernel, [("dat", True)], 1, "warm")
        _, cached0 = ncache.load_kernel(code.source)
        assert not cached0
        ncache.clear_memory_cache()  # keep the disk entry, drop the handle
        _, cached1 = ncache.load_kernel(code.source)
        assert cached1


# ---------------------------------------------------------------------------
# telemetry and reporting
# ---------------------------------------------------------------------------


class TestNativeTelemetry:
    @requires_cc
    def test_compile_span_and_cache_instants(self):
        blk = ops.Block(1)
        u = ops.Dat(blk, 16, halo_depth=1, name="u")

        def double(a):
            a[0] = a[0] * 2.0

        counters = PerfCounters()
        _clear_plans()
        with counters_scope(counters), swap(native=True), telemetry.tracing() as trc:
            ops.par_loop(double, blk, [(0, 16)], u(ops.RW), backend="vec")
            _clear_plans()  # force a second plan build: warm cache this time
            ops.par_loop(double, blk, [(0, 16)], u(ops.RW), backend="vec")
        spans = [e.name for e in trc.events() if isinstance(e, telemetry.SpanEvent)]
        instants = [e.name for e in trc.events()
                    if isinstance(e, telemetry.InstantEvent)]
        assert "native.compile" in spans
        assert "native.cache_miss" in instants
        assert "native.cache_hit" in instants
        assert counters.native_compiles == 1
        assert counters.native_cache_misses == 1
        assert counters.native_cache_hits == 1
        assert counters.native_calls == 2

    def test_timing_report_native_footer(self):
        counters = PerfCounters()
        counters.record_native_call()
        counters.record_native_compile()
        counters.record_native_cache_miss()
        counters.record_native_cache_hit()
        report = timing_report(counters)
        assert "native: 1 compiled-kernel calls" in report
        assert "so-cache 1/1 hit/miss (50.0%)" in report
        assert "1 cc runs" in report

    def test_footer_absent_without_native_activity(self):
        assert "native:" not in timing_report(PerfCounters())


# ---------------------------------------------------------------------------
# cache CLI
# ---------------------------------------------------------------------------


class TestNativeCli:
    @requires_cc
    def test_info_clear_prune_roundtrip(self, tmp_path, monkeypatch):
        import repro.native.__main__ as cli

        code = ncgen.generate_ops(_square_kernel, [("dat", True)], 1, "cli")
        ncache.load_kernel(code.source)
        assert cli.main(["info"]) == 0
        info = ncache.cache_info()
        assert info["objects"] == 1 and info["sources"] == 1
        assert cli.main(["prune", "--days", "30"]) == 0
        assert ncache.cache_info()["objects"] == 1  # too young to prune
        assert cli.main(["clear"]) == 0
        assert ncache.cache_info()["objects"] == 0

    def test_module_entrypoint(self, tmp_path):
        import os

        env = {**os.environ, "REPRO_NATIVE_CACHE_DIR": str(tmp_path / "cli_cache")}
        out = subprocess.run(
            [sys.executable, "-m", "repro.native", "info"],
            capture_output=True, text=True, env=env,
        )
        assert out.returncode == 0
        assert "cache dir" in out.stdout
