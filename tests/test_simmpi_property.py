"""Property tests on the MPI simulator: arbitrary routing is delivered exactly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmpi import World, run_spmd


class TestRandomRouting:
    @given(
        nranks=st.integers(2, 5),
        n_msgs=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_messages_delivered_once(self, nranks, n_msgs, seed):
        """A random send schedule known to all ranks is delivered exactly."""
        rng = np.random.default_rng(seed)
        # schedule[i] = (src, dst, tag, value)
        schedule = [
            (
                int(rng.integers(0, nranks)),
                int(rng.integers(0, nranks)),
                int(rng.integers(0, 3)),
                float(rng.standard_normal()),
            )
            for _ in range(n_msgs)
        ]
        # self-sends are legal but let's route distinct ranks for clarity
        schedule = [(s, d, t, v) for (s, d, t, v) in schedule if s != d]

        def main(comm):
            for src, dst, tag, value in schedule:
                if comm.rank == src:
                    comm.send(value, dst, tag)
            got = []
            for src, dst, tag, value in schedule:
                if comm.rank == dst:
                    got.append(comm.recv(src, tag))
            return sorted(got)

        results = run_spmd(nranks, main)
        for rank in range(nranks):
            expect = sorted(v for (s, d, t, v) in schedule if d == rank)
            assert results[rank] == pytest.approx(expect)

    @given(
        nranks=st.integers(2, 6),
        seed=st.integers(0, 500),
        op=st.sampled_from(["sum", "min", "max"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_matches_numpy(self, nranks, seed, op):
        rng = np.random.default_rng(seed)
        contributions = rng.standard_normal((nranks, 3))

        def main(comm):
            return comm.allreduce(contributions[comm.rank], op=op)

        results = run_spmd(nranks, main)
        expect = {
            "sum": contributions.sum(axis=0),
            "min": contributions.min(axis=0),
            "max": contributions.max(axis=0),
        }[op]
        for r in results:
            np.testing.assert_allclose(r, expect, atol=1e-12)

    @given(nranks=st.integers(2, 5), seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_alltoall_is_a_transpose(self, nranks, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, (nranks, nranks))

        def main(comm):
            return comm.alltoall(list(matrix[comm.rank]))

        results = run_spmd(nranks, main)
        received = np.asarray(results)
        np.testing.assert_array_equal(received, matrix.T)

    @given(nranks=st.integers(1, 6), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_bcast_from_every_root(self, nranks, seed):
        rng = np.random.default_rng(seed)
        payloads = rng.standard_normal(nranks)

        def main(comm):
            out = []
            for root in range(comm.size):
                data = payloads[root] if comm.rank == root else None
                out.append(comm.bcast(data, root=root))
            return out

        results = run_spmd(nranks, main)
        for r in results:
            np.testing.assert_allclose(r, payloads)

    def test_message_counters_exact(self):
        world = World(3)
        payload = np.zeros(10)

        def main(comm):
            for dst in range(comm.size):
                if dst != comm.rank:
                    comm.send(payload, dst)
            for src in range(comm.size):
                if src != comm.rank:
                    comm.recv(src)

        run_spmd(3, main, world=world)
        total = world.total_counters()
        assert total.messages_sent == 6
        assert total.bytes_sent == 6 * 80
