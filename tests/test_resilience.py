"""Resilience: fault injection, failure detection, checkpoint-restart."""

import threading
import time

import numpy as np
import pytest

from repro.common import config
from repro.common.counters import PerfCounters
from repro.common.profiling import active_counters, counters_scope
from repro.common.report import timing_report
from repro.resilience import (
    FaultPlan,
    MessageLostError,
    RankFailedError,
    RankKilledError,
    ResilienceError,
    RetryPolicy,
    run_resilient_spmd,
)
from repro.resilience.jobs import AirfoilJob
from repro.simmpi import DeadlockError, World, run_spmd


class TestFaultPlan:
    def test_kill_requires_exactly_one_site(self):
        with pytest.raises(ValueError):
            FaultPlan().kill(0)
        with pytest.raises(ValueError):
            FaultPlan().kill(0, at_loop=1, at_send=1)

    def test_kill_fires_at_nth_loop(self):
        plan = FaultPlan().kill(1, at_loop=3)
        for _ in range(3):
            plan.on_loop(0)  # other ranks unaffected
        plan.on_loop(1)
        plan.on_loop(1)
        with pytest.raises(RankKilledError):
            plan.on_loop(1)
        assert plan.fired_log == ["kill rank 1 at loop 3"]

    def test_kill_fires_at_nth_send(self):
        plan = FaultPlan().kill(0, at_send=2)
        assert plan.on_send(0, 1, 0) is None
        with pytest.raises(RankKilledError):
            plan.on_send(0, 1, 0)

    def test_drop_matches_times_and_after(self):
        plan = FaultPlan().drop(0, 1, times=2, after=1)
        hits = [plan.on_send(0, 1, 0) is not None for _ in range(5)]
        # match 1 spared (after=1), matches 2-3 dropped, budget then spent
        assert hits == [False, True, True, False, False]

    def test_drop_matches_tag_and_route(self):
        plan = FaultPlan().drop(0, 1, tag=7)
        assert plan.on_send(0, 1, 3) is None  # wrong tag
        assert plan.on_send(1, 0, 7) is None  # wrong direction
        assert plan.on_send(0, 1, 7) is not None

    def test_budget_survives_begin_attempt_but_not_reset(self):
        plan = FaultPlan().kill(0, at_loop=1)
        with pytest.raises(RankKilledError):
            plan.on_loop(0)
        plan.begin_attempt()
        plan.on_loop(0)  # budget spent: the kill does not re-fire
        plan.reset()
        with pytest.raises(RankKilledError):
            plan.on_loop(0)

    def test_counters_record_fault_kinds(self):
        c = PerfCounters()
        plan = (
            FaultPlan()
            .drop(0, 1)
            .delay(0, 1, seconds=0.0)
            .duplicate(0, 1)
        )
        for _ in range(3):
            plan.on_send(0, 1, 0, c)
        assert c.faults_injected == 3
        assert (c.messages_dropped, c.messages_delayed, c.messages_duplicated) == (1, 1, 1)

    def test_describe_lists_declared_faults(self):
        text = FaultPlan().kill(2, at_loop=9).drop(0, 1).slow(1, seconds=0.1).describe()
        assert "kill rank 2" in text and "drop" in text and "slow rank 1" in text
        assert FaultPlan().describe() == "(no faults)"


class TestRetryPolicy:
    def test_backoff_schedule(self):
        pol = RetryPolicy(max_retries=4, base_delay=0.001, multiplier=2.0, max_delay=0.005)
        assert pol.delays() == [0.001, 0.002, 0.004, 0.005]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestDetection:
    def test_peer_detects_killed_rank_promptly(self):
        """A peer blocked on recv from a dead rank fails fast, not at timeout."""
        plan = FaultPlan().kill(0, at_send=1)
        world = World(2, fault_plan=plan)

        def body(comm):
            if comm.rank == 0:
                comm.send("hello", 1)
            else:
                comm.recv(0)

        start = time.monotonic()
        with pytest.raises(RuntimeError) as exc_info:
            run_spmd(2, body, world=world)
        assert time.monotonic() - start < 10.0  # well under the 60 s timeout
        assert isinstance(exc_info.value.__cause__, RankKilledError)
        assert 0 in world.failed_ranks  # peers that die observing it may join

    def test_send_to_failed_rank_raises(self):
        world = World(2)
        world._state.mark_failed(1)
        with pytest.raises(RankFailedError):
            world.comms[0].send(1, dest=1)

    def test_recv_from_failed_rank_raises(self):
        world = World(2)
        world._state.mark_failed(1)
        with pytest.raises(RankFailedError):
            world.comms[0].recv(1)

    def test_deadlock_timeout_configurable(self):
        world = World(2)
        start = time.monotonic()
        with config.swap(deadlock_timeout=0.2):
            with pytest.raises(DeadlockError):
                world.comms[0].recv(1)
        assert 0.1 < time.monotonic() - start < 5.0

    def test_recv_timeout_param_overrides_config(self):
        world = World(2)
        with pytest.raises(DeadlockError):
            world.comms[0].recv(1, timeout=0.1)

    def test_drop_retried_until_delivered(self):
        plan = FaultPlan().drop(0, 1, times=2)
        world = World(2, fault_plan=plan, retry=RetryPolicy(max_retries=5, base_delay=0.0))

        def body(comm):
            if comm.rank == 0:
                comm.send(42, 1)
                return None
            return comm.recv(0)

        assert run_spmd(2, body, world=world) == [None, 42]
        total = world.total_counters()
        assert total.messages_dropped == 2
        assert total.messages_retried == 2

    def test_drop_exhausts_retries(self):
        plan = FaultPlan().drop(0, 1, times=10)
        world = World(2, fault_plan=plan, retry=RetryPolicy(max_retries=2, base_delay=0.0))
        with pytest.raises(MessageLostError):
            world.comms[0].send("x", 1)

    def test_silent_drop_without_policy(self):
        plan = FaultPlan().drop(0, 1)
        world = World(2, fault_plan=plan, retry=None)
        world.comms[0].send("x", 1)
        assert not world.comms[1].probe(0)  # lost in flight
        assert world.counters[0].messages_dropped == 1

    def test_delay_and_duplicate_delivery(self):
        plan = FaultPlan().delay(0, 1, seconds=0.01).duplicate(0, 1)
        world = World(2, fault_plan=plan)
        world.comms[0].send("late", 1)  # delayed
        world.comms[0].send("twin", 1)  # duplicated
        assert world.comms[1].recv(0, timeout=1.0) == "late"
        assert world.comms[1].recv(0, timeout=1.0) == "twin"
        assert world.comms[1].recv(0, timeout=1.0) == "twin"
        total = world.total_counters()
        assert (total.messages_delayed, total.messages_duplicated) == (1, 1)

    def test_slowdown_is_injected(self):
        plan = FaultPlan().slow(0, seconds=0.05, every=1)
        c = PerfCounters()
        start = time.monotonic()
        plan.on_loop(0, c)
        assert time.monotonic() - start >= 0.05
        assert c.faults_injected == 1


class TestThreadLocalScopes:
    def test_counter_scope_does_not_leak_across_threads(self):
        outer = PerfCounters()
        seen: list[PerfCounters] = []

        def worker():
            seen.append(active_counters())

        with counters_scope(outer):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert active_counters() is outer
        assert seen[0] is not outer  # thread saw its own (default) scope

    def test_scopes_nest_independently_per_thread(self):
        a, b = PerfCounters(), PerfCounters()
        results: dict[str, PerfCounters] = {}

        def worker(name, counters):
            with counters_scope(counters):
                time.sleep(0.01)
                results[name] = active_counters()

        threads = [
            threading.Thread(target=worker, args=("a", a)),
            threading.Thread(target=worker, args=("b", b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["a"] is a and results["b"] is b


NRANKS, ITERS = 3, 6


@pytest.fixture(scope="module")
def job():
    return AirfoilJob(NRANKS, ITERS, nx=10, ny=6)


@pytest.fixture(scope="module")
def baseline(job):
    """Fault-free distributed run: the ground truth for bitwise comparison."""
    state = job.setup()
    results = run_spmd(NRANKS, lambda comm: job.rank_main(comm, state))
    return results[0]  # (rms, gathered q) — identical on every rank


class TestResilientAirfoil:
    def test_fault_free_run_matches_plain_spmd(self, job, baseline, tmp_path):
        res = run_resilient_spmd(NRANKS, job, ckpt_dir=tmp_path, frequency=15)
        assert res.restarts == 0 and res.attempts == 1
        rms, q = res.results[0]
        assert rms == baseline[0]
        np.testing.assert_array_equal(q, baseline[1])

    def test_kill_recovers_bitwise_from_checkpoint(self, job, baseline, tmp_path):
        plan = FaultPlan().kill(1, at_loop=30)
        res = run_resilient_spmd(
            NRANKS, job, ckpt_dir=tmp_path, frequency=15, plan=plan
        )
        assert res.restarts == 1
        # round 0 entered at loop 15 and flushed; round 1 would enter at
        # loop 30, exactly where the kill lands, so recovery uses round 0
        assert res.recovered_rounds == [0]
        for rms, q in res.results:
            assert rms == baseline[0]
            np.testing.assert_array_equal(q, baseline[1])
        assert res.counters.faults_injected == 1
        assert res.counters.restarts == 1
        assert "resilience:" in timing_report(res.counters)

    def test_kill_without_checkpoints_restarts_from_scratch(self, job, baseline, tmp_path):
        plan = FaultPlan().kill(2, at_loop=20)
        res = run_resilient_spmd(NRANKS, job, ckpt_dir=tmp_path, plan=plan)
        assert res.restarts == 1
        assert res.recovered_rounds == [-1]
        rms, q = res.results[0]
        assert rms == baseline[0]
        np.testing.assert_array_equal(q, baseline[1])

    def test_transient_drops_masked_by_retry(self, job, baseline, tmp_path):
        plan = FaultPlan().drop(0, 1, times=2).drop(2, 0, times=1)
        res = run_resilient_spmd(
            NRANKS, job, ckpt_dir=tmp_path, frequency=15, plan=plan
        )
        assert res.restarts == 0  # masked, never fatal
        assert res.counters.messages_dropped == 3
        assert res.counters.messages_retried == 3
        rms, q = res.results[0]
        assert rms == baseline[0]
        np.testing.assert_array_equal(q, baseline[1])

    def test_deterministic_replay(self, job, tmp_path):
        plan = FaultPlan().kill(1, at_loop=25).drop(0, 2, times=1)
        first = run_resilient_spmd(
            NRANKS, job, ckpt_dir=tmp_path / "a", frequency=15, plan=plan
        )
        log = list(plan.fired_log)
        plan.reset()
        second = run_resilient_spmd(
            NRANKS, job, ckpt_dir=tmp_path / "b", frequency=15, plan=plan
        )
        assert plan.fired_log == log
        assert first.recovered_rounds == second.recovered_rounds
        np.testing.assert_array_equal(first.results[0][1], second.results[0][1])

    def test_gives_up_after_max_restarts(self, job, tmp_path):
        plan = FaultPlan().kill(0, at_loop=10).kill(1, at_loop=12)
        with pytest.raises(ResilienceError, match="giving up"):
            run_resilient_spmd(
                NRANKS, job, ckpt_dir=tmp_path, frequency=15, plan=plan,
                max_restarts=1,
            )

    def test_organic_errors_are_not_retried(self, tmp_path):
        class BrokenJob(AirfoilJob):
            def rank_main(self, comm, state):
                raise ZeroDivisionError("organic bug")

        with pytest.raises(RuntimeError) as exc_info:
            run_resilient_spmd(
                NRANKS, BrokenJob(NRANKS, ITERS, nx=10, ny=6),
                ckpt_dir=tmp_path, frequency=15,
            )
        assert isinstance(exc_info.value.__cause__, ZeroDivisionError)

    def test_zero_max_restarts_fails_on_first_kill(self, job, tmp_path):
        plan = FaultPlan().kill(0, at_loop=10)
        with pytest.raises(ResilienceError, match="giving up"):
            run_resilient_spmd(
                NRANKS, job, ckpt_dir=tmp_path, frequency=15, plan=plan,
                max_restarts=0,
            )


class TestLatestCommonRound:
    """Recovery-round selection when a crash leaves ranks disagreeing.

    A kill can interrupt the coordinated flush: some ranks have round k on
    disk, others don't, or a rank's round k file records a different loop
    entry (it had already raced ahead into round k+1's numbering).  The
    driver must recover from the newest round that *every* rank flushed
    with an *agreeing* entry index.
    """

    @staticmethod
    def _write(ckpt_dir, rank, round_no, entry_index):
        from repro.checkpoint.store import FileStore
        from repro.resilience.driver import _round_path

        store = FileStore(_round_path(ckpt_dir, rank, round_no))
        store.save_dataset("u", np.full(4, float(entry_index)))
        store.set_entry(entry_index)
        store.flush()

    def test_newest_complete_round_wins(self, tmp_path):
        from repro.resilience.driver import _latest_common_round

        for round_no, entry in ((0, 10), (1, 20)):
            for rank in range(3):
                self._write(tmp_path, rank, round_no, entry)
        assert _latest_common_round(tmp_path, 3) == (1, 20)

    def test_round_missing_a_rank_is_skipped(self, tmp_path):
        from repro.resilience.driver import _latest_common_round

        for rank in range(3):
            self._write(tmp_path, rank, 0, 10)
        # round 1 flushed by ranks 0 and 2 only — the crash hit rank 1
        self._write(tmp_path, 0, 1, 20)
        self._write(tmp_path, 2, 1, 20)
        assert _latest_common_round(tmp_path, 3) == (0, 10)

    def test_disagreeing_entry_indices_skipped(self, tmp_path):
        from repro.resilience.driver import _latest_common_round

        for rank in range(3):
            self._write(tmp_path, rank, 0, 10)
        # round 1 is inconsistent: rank 2 checkpointed a later loop entry
        self._write(tmp_path, 0, 1, 20)
        self._write(tmp_path, 1, 1, 20)
        self._write(tmp_path, 2, 1, 25)
        assert _latest_common_round(tmp_path, 3) == (0, 10)

    def test_newest_agreeing_round_wins_over_older_ones(self, tmp_path):
        from repro.resilience.driver import _latest_common_round

        for round_no, entry in ((0, 10), (1, 20), (2, 30)):
            for rank in range(2):
                self._write(tmp_path, rank, round_no, entry)
        # round 3 torn across ranks
        self._write(tmp_path, 0, 3, 40)
        self._write(tmp_path, 1, 3, 42)
        assert _latest_common_round(tmp_path, 2) == (2, 30)

    def test_torn_file_falls_back_to_older_round(self, tmp_path):
        from repro.resilience.driver import _latest_common_round, _round_path

        for rank in range(2):
            self._write(tmp_path, rank, 0, 10)
            self._write(tmp_path, rank, 1, 20)
        # rank 1's round-1 file is truncated mid-write
        path = _round_path(tmp_path, 1, 1)
        path.write_bytes(path.read_bytes()[:40])
        assert _latest_common_round(tmp_path, 2) == (0, 10)

    def test_no_consistent_round_returns_none(self, tmp_path):
        from repro.resilience.driver import _latest_common_round

        self._write(tmp_path, 0, 0, 10)
        self._write(tmp_path, 1, 0, 15)  # never agreed
        assert _latest_common_round(tmp_path, 2) is None

    def test_empty_dir_returns_none(self, tmp_path):
        from repro.resilience.driver import _latest_common_round

        assert _latest_common_round(tmp_path, 2) is None
