"""SoA layout transform and the npz mesh store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import op2
from repro.op2.io import dump_dat, load_dat_values, read_mesh, write_mesh
from repro.op2.soa import aos_index, soa_index, soa_stride, to_aos, to_soa


class TestSoA:
    def test_layout(self):
        s = op2.Set(3)
        d = op2.Dat(s, 2, [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        flat = to_soa(d)
        # component 0 of all elements first, then component 1
        np.testing.assert_allclose(flat, [1, 2, 3, 10, 20, 30])

    def test_stride_is_set_size(self):
        s = op2.Set(5, halo_nonexec=2)
        assert soa_stride(op2.Dat(s, 3)) == 7

    def test_index_functions_match_layout(self):
        s = op2.Set(4)
        d = op2.Dat(s, 3, np.arange(12, dtype=float))
        flat = to_soa(d)
        stride = soa_stride(d)
        for e in range(4):
            for c in range(3):
                assert flat[soa_index(e, c, stride)] == d.data[e, c]
                assert d.data.reshape(-1)[aos_index(e, c, 3)] == d.data[e, c]

    @given(n=st.integers(1, 30), dim=st.integers(1, 6), seed=st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim))
        s = op2.Set(n)
        d = op2.Dat(s, dim, data)
        np.testing.assert_array_equal(to_aos(to_soa(d), n, dim), data)

    def test_bad_flat_shape(self):
        with pytest.raises(Exception):
            to_aos(np.zeros(5), 2, 3)


class TestMeshIO:
    def test_roundtrip(self, tmp_path):
        nodes, edges = op2.Set(4, "nodes"), op2.Set(3, "edges")
        m = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3]], "e2n")
        x = op2.Dat(nodes, 1, [1.0, 2.0, 3.0, 4.0], name="x")
        path = tmp_path / "mesh.npz"
        write_mesh(path, {"nodes": nodes, "edges": edges}, {"e2n": m}, {"x": x})
        sets, maps, dats = read_mesh(path)
        assert sets["nodes"].size == 4
        assert maps["e2n"].arity == 2
        np.testing.assert_array_equal(maps["e2n"].values, m.values)
        np.testing.assert_allclose(dats["x"].data, x.data)

    def test_map_set_wiring_restored(self, tmp_path):
        nodes, edges = op2.Set(4, "nodes"), op2.Set(3, "edges")
        m = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3]], "e2n")
        path = tmp_path / "mesh.npz"
        write_mesh(path, {"nodes": nodes, "edges": edges}, {"e2n": m}, {})
        sets, maps, _ = read_mesh(path)
        assert maps["e2n"].from_set is sets["edges"]
        assert maps["e2n"].to_set is sets["nodes"]

    def test_dump_dat_owned_only(self, tmp_path):
        s = op2.Set(3, halo_nonexec=2)
        d = op2.Dat(s, 1, [1.0, 2.0, 3.0, 9.0, 9.0])
        path = tmp_path / "d.npz"
        dump_dat(path, d)
        np.testing.assert_allclose(load_dat_values(path)[:, 0], [1, 2, 3])
