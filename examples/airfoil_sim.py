"""Airfoil: the OP2 proxy CFD application, serial and distributed.

Runs the non-linear 2D inviscid solver on a perturbed free stream, prints
the residual history, the per-loop profile (the data behind paper Table I),
and finally re-runs distributed over 4 simulated MPI ranks and verifies the
result matches the serial run exactly.

Run:  python examples/airfoil_sim.py [--trace trace.json]

With ``--trace`` the whole run (serial and the 4-rank distributed rerun)
records telemetry and writes a Chrome trace: open it at chrome://tracing,
or summarise it with ``python -m repro.telemetry report trace.json``.
"""

import argparse

import numpy as np

from repro import op2, telemetry
from repro.apps.airfoil import AirfoilApp, generate_mesh
from repro.common.counters import PerfCounters
from repro.common.profiling import counters_scope
from repro.simmpi import run_spmd

NX, NY, ITERS = 60, 40, 40

cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
cli.add_argument(
    "--trace", metavar="PATH", default=None,
    help="record telemetry and write a Chrome trace (chrome://tracing) here",
)
cli_args = cli.parse_args()
tracer = telemetry.enable() if cli_args.trace else None

print(f"generating {NX}x{NY} channel mesh...")
mesh = generate_mesh(NX, NY, jitter=0.1)
rng = np.random.default_rng(1)
mesh.q.data[:, 0] *= 1.0 + 0.05 * rng.random(mesh.cells.size)
mesh.q.data[:, 3] *= 1.0 + 0.05 * rng.random(mesh.cells.size)
initial_q = mesh.q.data.copy()

app = AirfoilApp(mesh)
counters = PerfCounters()
print(f"\n{'iter':>6} {'rms residual':>14}")
with counters_scope(counters):
    for it in range(1, ITERS + 1):
        app.iteration()
        if it % 10 == 0 or it == 1:
            rms = float(np.sqrt(app.rms.value / mesh.cells.size))
            print(f"{it:>6} {rms:14.3e}")

print("\nper-loop profile (the access-execute counters):")
print(f"{'loop':<12}{'iterations':>12}{'MB moved':>10}{'MFLOPs':>9}{'time(s)':>9}")
for name, its, nbytes, flops, secs in counters.summary_rows():
    print(f"{name:<12}{its:>12}{nbytes / 1e6:>10.1f}{flops / 1e6:>9.1f}{secs:>9.3f}")

# -- the same run, distributed over 4 simulated MPI ranks -----------------------
print("\nre-running on 4 simulated MPI ranks (RCB partitioning)...")
mesh2 = generate_mesh(NX, NY, jitter=0.1)
mesh2.q.data[:] = initial_q
app2 = AirfoilApp(mesh2)
pm = app2.build_partitioned(4, "rcb")


def rank_main(comm):
    rms = app2.run_distributed(comm, pm, ITERS)
    return rms, pm.local(comm.rank).gather_dat(comm, mesh2.q)


results = run_spmd(4, rank_main)
rms_dist, q_dist = results[0]
match = np.allclose(q_dist, mesh.q.data, atol=1e-12)
print(f"distributed rms = {rms_dist:.3e}; state matches serial: {match}")
assert match

if tracer is not None:
    telemetry.disable()
    telemetry.write_chrome_trace(cli_args.trace, tracer.events(), counters=counters)
    n = len(tracer.events())
    print(
        f"\nwrote {n} trace events to {cli_args.trace} — open in chrome://tracing"
        f" or run: python -m repro.telemetry report {cli_args.trace}"
    )
