"""Sod shock tube: the hydro scheme validated against the exact solution.

Runs the 1-D CloverLeaf-style scheme on Sod's problem and compares the
profiles against the exact Riemann solution (an ASCII plot, the L1 errors
and the wave positions).

Run:  python examples/sod_shock_tube.py
"""

import numpy as np

from repro.apps.sod import SodApp, exact_sod_solution, riemann_star_state

N, T_END = 400, 0.2

p_star, u_star = riemann_star_state((1.0, 0.0, 1.0), (0.125, 0.0, 0.1))
print(f"exact star state: p* = {p_star:.5f}, u* = {u_star:.5f}")

app = SodApp(n=N)
m0 = app.total_mass()
t = app.run_until(T_END)
prof = app.profiles()
x = app.centres()
exact = exact_sod_solution(x, t)

print(f"ran to t = {t:.4f} on {N} cells; mass {m0:.6f} -> {app.total_mass():.6f}")
for field in ("rho", "u", "p"):
    err = np.abs(prof[field] - exact[field]).mean()
    print(f"  L1 error {field:>3}: {err:.5f}")

# ASCII density profile: numerical (*) over exact (-)
print("\ndensity profile (numerical * / exact -):")
rows, cols = 16, 76
grid = [[" "] * cols for _ in range(rows)]
for j in range(cols):
    i = int(j / cols * N)
    re = int((1.0 - exact["rho"][i]) / 1.0 * (rows - 1))
    rn = int((1.0 - prof["rho"][i]) / 1.0 * (rows - 1))
    grid[min(re, rows - 1)][j] = "-"
    grid[min(rn, rows - 1)][j] = "*"
for row in grid:
    print("".join(row))
print(f"{'x=0':<38}{'x=1':>38}")

err = np.abs(prof["rho"] - exact["rho"]).mean()
assert err < 0.01, err
print("\nL1(rho) < 0.01: the scheme reproduces the exact solution")
