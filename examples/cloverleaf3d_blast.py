"""CloverLeaf 3D: a blast in a box, validated against the 2D solver.

Run:  python examples/cloverleaf3d_blast.py
"""

import numpy as np

from repro.apps.cloverleaf import CloverLeafApp
from repro.apps.cloverleaf3d import CloverLeaf3DApp

NX, NY, NZ, STEPS = 16, 16, 8, 8

print(f"3D blast on {NX}x{NY}x{NZ} cells, {STEPS} steps (rotating sweep orders)")
app = CloverLeaf3DApp(NX, NY, NZ)
s0 = app.field_summary()
for step in range(1, STEPS + 1):
    dt = app.step()
    if step % 2 == 0:
        s = app.field_summary()
        print(f"  step {step:>3}  dt={dt:.4f}  mass={s['mass']:.10f}  ie={s['ie']:.6f}")
s1 = app.field_summary()
print(f"mass conserved: {np.isclose(s0['mass'], s1['mass'], rtol=1e-12)}")

# oracle: a z-uniform 3D run reproduces the 2D solver exactly
print("\nvalidating against the 2D solver on a z-uniform problem...")
app2d = CloverLeafApp(nx=12, ny=10)
app3d = CloverLeaf3DApp(12, 10, 3)
app3d.rotate_all = False
for _ in range(5):
    app2d.step()
    app3d.step()
match = np.allclose(
    app3d.st.density0.interior[:, :, 0], app2d.st.density0.interior, atol=1e-12
)
zvel = np.abs(app3d.st.zvel0.interior).max()
print(f"3D (z-uniform) == 2D: {match}; max |z-velocity| = {zvel:.2e}")
assert match
