"""Multi-block OPS: two coupled blocks with explicit inter-block halos.

Solves diffusion on a domain split into two blocks (paper Section II-A:
"Halos between datasets defined on different blocks are ... explicitly
defined by the user ... inter-block halo exchanges are triggered explicitly
by the user and serve as synchronization points").  Verifies the two-block
answer is bitwise identical to the single-block oracle.

Run:  python examples/multiblock_heat.py
"""

import numpy as np

from repro.apps.multiblock import MultiBlockDiffusion, SingleBlockDiffusion

N, M, STEPS = 16, 12, 40

rng = np.random.default_rng(0)
initial = np.zeros((2 * N, M))
initial[N - 4 : N + 4, M // 2 - 2 : M // 2 + 2] = 1.0  # hot spot on the seam

multi = MultiBlockDiffusion(N, M, initial=initial)
single = SingleBlockDiffusion(N, M, initial=initial)

print(f"two {N}x{M} blocks coupled through a declared halo group "
      f"({len(multi.interface)} inter-block copies)")
print(f"{'step':>5} {'total (conserved)':>18} {'max':>8} {'seam jump':>10}")
for step in range(1, STEPS + 1):
    multi.step()
    single.step()
    if step % 10 == 0 or step == 1:
        sol = multi.solution()
        seam_jump = np.abs(sol[N - 1] - sol[N]).max()
        print(f"{step:>5} {multi.total():>18.12f} {sol.max():>8.4f} {seam_jump:>10.2e}")

a, b = multi.solution(), single.u.interior
print(f"\ntwo-block result identical to single-block oracle: {np.array_equal(a, b)}")
assert np.array_equal(a, b)
