"""Quickstart: the OP2 and OPS APIs in ~60 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import op2, ops

# ---------------------------------------------------------------------------
# OP2: unstructured.  Mesh = sets + maps + dats; computation = parallel
# loops with declared access modes (paper Section II-A).
# ---------------------------------------------------------------------------

nodes = op2.Set(5, "nodes")
edges = op2.Set(4, "edges")
edge2node = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3], [3, 4]], "edge2node")
temperature = op2.Dat(nodes, 1, [10.0, 20.0, 30.0, 40.0, 50.0], name="T")
flux = op2.Dat(nodes, 1, name="flux")


def exchange(t_left, t_right, f_left, f_right):
    """User kernel: written elementwise, single-threaded perspective."""
    d = 0.5 * (t_right[0] - t_left[0])
    f_left[0] += d
    f_right[0] -= d


k_exchange = op2.Kernel(exchange, "exchange", flops_per_elem=3)

op2.par_loop(
    k_exchange,
    edges,
    temperature(op2.READ, edge2node, 0),
    temperature(op2.READ, edge2node, 1),
    flux(op2.INC, edge2node, 0),
    flux(op2.INC, edge2node, 1),
)
print("OP2 nodal fluxes:", flux.data[:, 0])

# the translator generated a vectorised kernel behind the scenes:
print("\ngenerated vector kernel:")
print(k_exchange.vec_source)

# ---------------------------------------------------------------------------
# OPS: structured.  Blocks + dats with halos + declared stencils.
# ---------------------------------------------------------------------------

grid = ops.Block(2, "grid")
u = ops.Dat(grid, (6, 6), halo_depth=1, name="u")
v = ops.Dat(grid, (6, 6), halo_depth=1, name="v")
u.interior[...] = np.arange(36.0).reshape(6, 6)


def smooth(a, b):
    b[0, 0] = 0.25 * (a[1, 0] + a[-1, 0] + a[0, 1] + a[0, -1])


ops.par_loop(
    smooth,
    grid,
    [(1, 5), (1, 5)],
    u(ops.READ, ops.S2D_5PT),
    v(ops.WRITE),
    check=True,  # runtime stencil verification (paper Section II-C)
)
print("\nOPS smoothed interior:")
print(v.interior[1:5, 1:5])

# global reductions use explicit handles
total = ops.Reduction("inc", name="total")
ops.par_loop(lambda a, t: t.inc(a[0, 0]), grid, [(0, 6), (0, 6)], u(ops.READ), total,
             name="sum")
print("\nOPS reduction, sum(u) =", total.value)
