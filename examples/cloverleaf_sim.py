"""CloverLeaf 2D: the OPS proxy hydrodynamics application.

Runs the clover_bm energy-source problem and prints the field_summary
conservation table every few steps, exactly like the original mini-app's
output, then cross-checks the OPS execution against the hand-coded NumPy
"original" (the paper Fig 5 comparison) and a 4-rank distributed run.

Run:  python examples/cloverleaf_sim.py
"""

import time

import numpy as np

from repro.apps.cloverleaf import CloverLeafApp, CloverLeafReference, clover_bm_state
from repro.apps.cloverleaf.app import DistributedCloverLeafApp
from repro.ops.decomp import DecomposedBlock
from repro.simmpi import run_spmd

NX = NY = 48
STEPS = 20

print(f"clover_bm problem, {NX}x{NY} cells, {STEPS} steps")
app = CloverLeafApp(nx=NX, ny=NY)

header = f"{'step':>5} {'dt':>10} {'volume':>10} {'mass':>10} {'ie':>10} {'ke':>10} {'pressure':>10}"
print(header)
t0 = time.perf_counter()
for step in range(1, STEPS + 1):
    dt = app.step()
    if step % 5 == 0 or step == 1:
        s = app.field_summary()
        print(
            f"{step:>5} {dt:10.4f} {s['volume']:10.3f} {s['mass']:10.4f} "
            f"{s['ie']:10.4f} {s['ke']:10.4f} {s['pressure']:10.4f}"
        )
t_ops = time.perf_counter() - t0

s0_mass = 0.2 * (NX * NY - (NX // 2) * (NY // 2)) + 1.0 * (NX // 2) * (NY // 2)
s0_mass *= (10.0 / NX) * (10.0 / NY)
print(f"\nmass conservation: initial {s0_mass:.6f}, final {app.field_summary()['mass']:.6f}")

# -- Original (hand-coded NumPy) vs OPS: the Fig 5 methodology ----------------------
print("\nrunning the hand-coded original for comparison...")
ref = CloverLeafReference(NX, NY)
t0 = time.perf_counter()
ref.run(STEPS)
t_orig = time.perf_counter() - t0
identical = np.array_equal(app.st.density0.interior, ref._int(ref.density0, (NX, NY)))
print(f"bitwise identical results: {identical}")
print(f"wall-clock: original {t_orig:.3f}s, OPS {t_ops:.3f}s (ratio {t_ops / t_orig:.2f})")
assert identical

# -- distributed over 4 simulated ranks -----------------------------------------------
print("\nre-running on 4 simulated MPI ranks...")
gstate = clover_bm_state(NX, NY)
dec = DecomposedBlock(4, gstate.block, gstate.all_dats, global_size=(NX, NY))


def rank_main(comm):
    dist = DistributedCloverLeafApp(comm, dec, gstate)
    dist.run(STEPS)
    return dist.gather_field("density0")


density = run_spmd(4, rank_main)[0]
match = np.allclose(density, app.st.density0.interior, atol=1e-14)
print(f"distributed density field matches serial: {match}")
assert match
