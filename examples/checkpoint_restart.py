"""Checkpointing and recovery on Airfoil (paper Section VI / Figure 8).

1. Records the application's loop chain and prints the Figure-8 decision
   table (which datasets a checkpoint at each loop would save/drop).
2. Runs with the speculative checkpoint manager: it detects the 9-loop
   periodic kernel sequence and waits for the cheapest entry point.
3. Simulates a crash, then recovers: the re-run fast-forwards (loops are
   skipped, only global values replayed), restores the saved datasets and
   resumes — and ends bit-identical to the uninterrupted run.
4. Goes fully automatic: a 3-rank simulated MPI run with a fault plan that
   kills a rank mid-flight; ``run_resilient_spmd`` checkpoints every few
   loops, detects the failure, and restarts from the latest complete
   checkpoint round — again ending bit-identical to the fault-free run.

Run:  python examples/checkpoint_restart.py
"""

import numpy as np

from repro.apps.airfoil import AirfoilApp
from repro.checkpoint import (
    CheckpointManager,
    FileStore,
    RecoveryReplayer,
    best_entry_points,
    chain_from_events,
    detect_period,
)
from repro.checkpoint.analysis import format_table
from repro.common.profiling import loop_chain_record
import tempfile
from pathlib import Path

NX, NY, ITERS = 20, 14, 6


def fresh_app() -> AirfoilApp:
    app = AirfoilApp(nx=NX, ny=NY, jitter=0.1)
    rng = np.random.default_rng(5)
    app.mesh.q.data[:, 0] *= 1.0 + 0.05 * rng.random(app.mesh.cells.size)
    return app


# -- 1. the decision table -------------------------------------------------------
print("recording the loop chain (2 iterations)...")
app = fresh_app()
with loop_chain_record() as events:
    app.run(2)
chain = chain_from_events(events)
print(format_table(chain))
period = detect_period([c.name for c in chain])
cheap = sorted({chain[i].name for i in best_entry_points(chain)})
print(f"\ndetected period: {period} loops; cheapest entry point(s): {cheap}")

# -- 2. checkpointed run -----------------------------------------------------------
print("\nrunning with a checkpoint triggered mid-flight...")
app = fresh_app()
ckpt_path = Path(tempfile.mkdtemp()) / "airfoil.ckpt.npz"
store = FileStore(ckpt_path)
with CheckpointManager(store, speculative=True) as mgr:
    app.run(2)
    mgr.trigger()
    app.run(ITERS - 2)
store.flush()
final_q = app.mesh.q.data.copy()
final_rms = app.rms.value
print(f"checkpoint written to {ckpt_path}")
print(f"  entry at loop index {store.entry_index}")
print(f"  saved: {sorted(store.datasets)} ({store.saved_bytes} bytes)")
print(f"  dropped/not saved: {sorted(store.dropped)}")

# -- 3. crash + recovery -------------------------------------------------------------
print("\nsimulating a crash: fresh state, recovery replay...")
app2 = fresh_app()
m = app2.mesh
loaded = FileStore.load(ckpt_path)
with RecoveryReplayer(
    loaded,
    {"q": m.q, "q_old": m.qold, "adt": m.adt, "res": m.res, "x": m.x, "bound": m.bound},
    {"rms": app2.rms},
):
    app2.run(ITERS)

ok = np.array_equal(app2.mesh.q.data, final_q) and app2.rms.value == final_rms
print(f"recovered run matches the uninterrupted run exactly: {ok}")
assert ok

# -- 4. automatic restart after an injected rank failure -------------------------------
print("\nresilient 3-rank run: kill rank 1 mid-flight, restart automatically...")
from repro.common.report import timing_report
from repro.resilience import FaultPlan, run_resilient_spmd
from repro.resilience.jobs import AirfoilJob
from repro.simmpi import run_spmd

job = AirfoilJob(3, ITERS, nx=NX, ny=NY)
state = job.setup()
base_rms, base_q = run_spmd(3, lambda comm: job.rank_main(comm, state))[0]

plan = FaultPlan().kill(1, at_loop=30)
print(f"fault plan:\n  {plan.describe()}")
res = run_resilient_spmd(
    3, job, ckpt_dir=Path(tempfile.mkdtemp()), frequency=18, plan=plan
)
rms, q = res.results[0]
print(f"injected faults fired: {plan.fired_log}")
print(
    f"survived with {res.restarts} restart(s); "
    f"recovered from checkpoint round(s) {res.recovered_rounds}"
)
ok = rms == base_rms and np.array_equal(q, base_q)
print(f"resilient run matches the fault-free run exactly: {ok}")
assert ok
print("\n" + timing_report(res.counters, top=3))
