"""The source-to-source translator in action (paper Fig 1 and Fig 7).

Parses the Airfoil application source, lifts every par_loop call site, and
emits per-loop implementation files for the python/OpenMP/CUDA targets —
including the three CUDA memory strategies of paper Figure 7.

Run:  python examples/translate_app.py
"""

import inspect
import tempfile
from pathlib import Path

import repro.apps.airfoil.app as airfoil_app
from repro.translator import parse_app_source, translate_app
from repro.translator.codegen.cuda_c import CudaDatSpec, MemoryStrategy, generate_cuda

# -- lift the loop sites from the real application ----------------------------------
source = inspect.getsource(airfoil_app)
sites = parse_app_source(source, filename="repro/apps/airfoil/app.py")
print(f"found {len(sites)} parallel loop call sites in the Airfoil application:")
for site in sites:
    kind = "indirect" if site.has_indirection else "direct"
    print(f"  line {site.lineno:>4}: {site.kernel:<14} over {site.iterset:<12} "
          f"({len(site.args)} args, {kind})")

# -- translate: one implementation file per loop per target ---------------------------
out_dir = Path(tempfile.mkdtemp()) / "generated"
src_path = Path(tempfile.mkdtemp()) / "airfoil_app.py"
src_path.write_text(source)
result = translate_app(src_path, out_dir)
print(f"\ngenerated {len(result.files)} files into {out_dir}:")
for f in sorted(result.files):
    print("  ", f.name)

# -- Figure 7: the three CUDA memory strategies for a coords-style dat ------------------
res_calc = next(s for s in sites if "RES_CALC" in s.kernel)
print("\nFigure 7 — generated CUDA, memory strategy variants for `coords`:")
for strategy in MemoryStrategy:
    code = generate_cuda(res_calc, [CudaDatSpec("coords", 2)], strategy)
    print(f"\n// ================== {strategy.value} ==================")
    print(code)
